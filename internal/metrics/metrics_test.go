package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d, want 42", c.Load())
	}
	if r.Counter("a.b") != c {
		t.Error("registration must be idempotent")
	}
	c.Store(7)
	if got := r.Snapshot().Counter("a.b"); got != 7 {
		t.Errorf("snapshot counter = %d, want 7", got)
	}
	if got := r.Snapshot().Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(5)
	g.Set(2)
	if g.Load() != 2 || g.Max() != 5 {
		t.Fatalf("gauge = %d/%d, want 2/5", g.Load(), g.Max())
	}
	g.Add(10)
	if g.Load() != 12 || g.Max() != 12 {
		t.Fatalf("gauge after Add = %d/%d, want 12/12", g.Load(), g.Max())
	}
	g.Add(-12)
	if g.Load() != 0 || g.Max() != 12 {
		t.Fatalf("gauge after drain = %d/%d, want 0/12", g.Load(), g.Max())
	}
	gv := r.Snapshot().Gauge("depth")
	if gv.Value != 0 || gv.Max != 12 {
		t.Errorf("snapshot gauge = %+v", gv)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", ExpBuckets(1, 4)) // bounds 1,2,4,8 + overflow
	for _, v := range []uint64{1, 2, 2, 3, 9, 100} {
		h.Observe(v)
	}
	hv := r.Snapshot().Histogram("lat")
	if hv.Count != 6 || hv.Sum != 117 || hv.Min != 1 || hv.Max != 100 {
		t.Fatalf("histogram snapshot = %+v", hv)
	}
	wantCounts := []uint64{1, 2, 1, 0, 2} // <=1, <=2, <=4, <=8, overflow
	for i, b := range hv.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if hv.Buckets[len(hv.Buckets)-1].Le != math.MaxUint64 {
		t.Error("last bucket must be the overflow bucket")
	}
	if q := hv.Quantile(0.5); q != 2 {
		t.Errorf("p50 = %d, want 2", q)
	}
	if q := hv.Quantile(1.0); q != 100 {
		t.Errorf("p100 = %d, want max (100)", q)
	}
	if q := (HistogramValue{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
	if m := hv.Mean(); m < 19 || m > 20 {
		t.Errorf("mean = %.2f, want 19.5", m)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1000, 3)
	want := []uint64{1000, 2000, 4000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h", ExpBuckets(10, 2)).Observe(15)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("c") != 3 || back.Gauge("g").Value != -2 || back.Histogram("h").Count != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestSnapshotStringDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	r.Gauge("m.middle").Set(4)
	r.Histogram("h.lat", ExpBuckets(1, 2)).Observe(1)
	s := r.Snapshot().String()
	if s != r.Snapshot().String() {
		t.Fatal("snapshot render must be deterministic")
	}
	ia, iz := strings.Index(s, "a.first"), strings.Index(s, "z.last")
	if ia < 0 || iz < 0 || ia > iz {
		t.Errorf("counters not name-sorted:\n%s", s)
	}
	for _, want := range []string{"m.middle", "h.lat", "p50=", "max "} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

// TestConcurrentUpdates exercises every hot path under the race detector.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1, 8))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(uint64(i % 300))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counter("c") != 4000 {
		t.Errorf("counter = %d, want 4000", snap.Counter("c"))
	}
	if snap.Histogram("h").Count != 4000 {
		t.Errorf("histogram count = %d, want 4000", snap.Histogram("h").Count)
	}
	if snap.Gauge("g").Max != 999 {
		t.Errorf("gauge max = %d, want 999", snap.Gauge("g").Max)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []uint64{10, 100})

	c.Add(5)
	g.Set(7)
	h.Observe(3)
	h.Observe(50)
	prev := r.Snapshot()

	c.Add(4)
	g.Set(2) // level drops; high-water stays 7
	h.Observe(3)
	h.Observe(1_000) // overflow bucket
	cur := r.Snapshot()

	d := cur.Diff(prev)
	if got := d.Counter("c"); got != 4 {
		t.Errorf("counter diff = %d, want 4", got)
	}
	// Gauges are levels: current value and high-water pass through.
	if gv := d.Gauge("g"); gv.Value != 2 || gv.Max != 7 {
		t.Errorf("gauge diff = %+v, want value 2, max 7", gv)
	}
	hd := d.Histogram("h")
	if hd.Count != 2 || hd.Sum != 1_003 {
		t.Errorf("histogram diff count=%d sum=%d, want 2, 1003", hd.Count, hd.Sum)
	}
	wantBuckets := []uint64{1, 0, 1} // le=10, le=100, overflow
	for i, b := range hd.Buckets {
		if b.Count != wantBuckets[i] {
			t.Errorf("bucket %d diff = %d, want %d", i, b.Count, wantBuckets[i])
		}
	}
	// Min/max pass through from the cumulative snapshot.
	if hd.Min != cur.Histogram("h").Min || hd.Max != 1_000 {
		t.Errorf("histogram diff min=%d max=%d, want pass-through", hd.Min, hd.Max)
	}
}

func TestSnapshotDiffEdgeCases(t *testing.T) {
	r := NewRegistry()
	r.Counter("new").Add(3)
	cur := r.Snapshot()
	// Diff against an empty previous snapshot is the snapshot itself.
	d := cur.Diff(Snapshot{})
	if d.Counter("new") != 3 {
		t.Errorf("diff vs empty = %d, want 3", d.Counter("new"))
	}
	// A mirrored counter stored backwards clamps to zero, never wraps.
	prev := r.Snapshot()
	r.Counter("new").Store(1)
	if got := r.Snapshot().Diff(prev).Counter("new"); got != 0 {
		t.Errorf("backwards counter diff = %d, want 0 (clamped)", got)
	}
}
