package asm

import (
	"math/rand"
	"strings"
	"testing"

	"umi/internal/isa"
	"umi/internal/program"
	"umi/internal/vm"
	"umi/internal/workloads"
)

const sumSrc = `
; sum 4 words
.entry entry
entry:
    movi r0, 0
    movi r6, 4
    movi r2, 0x10000000
loop:
    load8 r1, [r2+r0*8]
    add r7, r7, r1
    addi r0, r0, 1
    br.lt r0, r6, loop
    halt
.data 0x10000000
    .word 3 5 7 11
`

func TestParseAndRun(t *testing.T) {
	p, err := Parse("sum", sumSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Entry != p.Symbols["entry"] {
		t.Errorf("entry = %#x, want %#x", p.Entry, p.Symbols["entry"])
	}
	m := vm.New(p, nil)
	if err := m.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Regs[isa.R7] != 26 {
		t.Errorf("sum = %d, want 26", m.Regs[isa.R7])
	}
}

func TestParseAllSyntaxForms(t *testing.T) {
	src := `
start:
    nop
    add r1, r2, r3
    sub r1, r2, r3
    mul r1, r2, r3
    div r1, r2, r3
    and r1, r2, r3
    or r1, r2, r3
    xor r1, r2, r3
    shl r1, r2, r3
    shr r1, r2, r3
    addi r1, r2, -5
    muli r1, r2, 3
    andi r1, r2, 0xFF
    shri r1, r2, 4
    mov r1, r2
    movi r1, 0x1234
    load1 r1, [r2]
    load2 r1, [r2+16]
    load4 r1, [r2-8]
    load8 r1, [r2+r3*8+32]
    store8 r1, [sp+8]
    store4 r1, [bp-16]
    load8 r1, [+0x8000000]
    load8 r1, [r3*4+64]
    prefetch [r2+256]
    jmp start
    br.geu r1, r2, start
    bri.ne r1, 42, start
    call start
    jmpind r4
    ret
    halt
`
	p, err := Parse("forms", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Instrs) != 32 {
		t.Errorf("parsed %d instructions, want 32", len(p.Instrs))
	}
	// Spot-check a few decoded operands.
	ld := p.Instrs[19] // load8 r1, [r2+r3*8+32]
	if ld.Op != isa.OpLoad || ld.Mem.Base != isa.R2 || ld.Mem.Index != isa.R3 ||
		ld.Mem.Scale != 8 || ld.Mem.Disp != 32 {
		t.Errorf("indexed load decoded wrong: %+v", ld)
	}
	abs := p.Instrs[22] // [+0x8000000]
	if !abs.Mem.IsStatic() || abs.Mem.Disp != 0x8000000 {
		t.Errorf("absolute ref decoded wrong: %+v", abs.Mem)
	}
	sp := p.Instrs[20]
	if !sp.Mem.IsStackRelative() || sp.Mem.Disp != 8 {
		t.Errorf("stack ref decoded wrong: %+v", sp.Mem)
	}
	bri := p.Instrs[27]
	if bri.Op != isa.OpBrI || bri.Cond != isa.CondNE || bri.Imm2 != 42 {
		t.Errorf("bri decoded wrong: %+v", bri)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "frob r1, r2"},
		{"bad register", "mov r99, r1"},
		{"undefined label", "jmp nowhere"},
		{"duplicate label", "a:\nnop\na:\nhalt"},
		{"bad size", "load3 r1, [r2]"},
		{"bad cond", "br.zz r1, r2, 0x400000"},
		{"word outside data", ".word 1 2"},
		{"label in data", ".data 0x1000\nlbl:"},
		{"bad memref", "load8 r1, r2"},
		{"bad scale", "load8 r1, [r2+r3*3]"},
		{"empty", "; nothing"},
		{"bad entry", ".entry nope\nhalt"},
		{"missing operand", "add r1, r2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse("bad", c.src); err == nil {
				t.Errorf("Parse accepted %q", c.src)
			}
		})
	}
}

func TestFormatParsesBack(t *testing.T) {
	p, err := Parse("sum", sumSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text := Format(p)
	for _, want := range []string{".entry entry", "loop:", "load8 r1, [r2+r0*8]", ".data 0x10000000", ".word 0x3 0x5 0x7 0xb"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format output missing %q:\n%s", want, text)
		}
	}
	p2, err := Parse("sum2", text)
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if len(p2.Instrs) != len(p.Instrs) {
		t.Fatalf("instr count changed: %d -> %d", len(p.Instrs), len(p2.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i] != p2.Instrs[i] {
			t.Errorf("instr %d changed: %v -> %v", i, p.Instrs[i], p2.Instrs[i])
		}
	}
}

// The strongest round-trip statement: every bundled workload formats to
// text that re-assembles into an identical instruction stream and runs to
// the same architectural state.
func TestWorkloadRoundTrip(t *testing.T) {
	for _, name := range []string{"181.mcf", "171.swim", "164.gzip", "treeadd", "252.eon"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, ok := workloads.ByName(name)
			if !ok {
				t.Fatal("workload missing")
			}
			orig := w.Program()
			text := Format(orig)
			re, err := Parse(name, text)
			if err != nil {
				t.Fatalf("re-Parse: %v", err)
			}
			if len(re.Instrs) != len(orig.Instrs) {
				t.Fatalf("instr count %d -> %d", len(orig.Instrs), len(re.Instrs))
			}
			for i := range orig.Instrs {
				if re.Instrs[i] != orig.Instrs[i] {
					t.Fatalf("instr %d: %v -> %v", i, orig.Instrs[i], re.Instrs[i])
				}
			}
			if re.Entry != orig.Entry {
				t.Errorf("entry %#x -> %#x", orig.Entry, re.Entry)
			}
			m1, m2 := vm.New(orig, nil), vm.New(re, nil)
			if err := m1.Run(60_000_000); err != nil {
				t.Fatalf("orig run: %v", err)
			}
			if err := m2.Run(60_000_000); err != nil {
				t.Fatalf("reassembled run: %v", err)
			}
			if m1.Regs != m2.Regs || m1.Instrs != m2.Instrs {
				t.Error("architectural state diverged after round trip")
			}
		})
	}
}

func TestDataPadding(t *testing.T) {
	// Data segments are always 8-byte aligned through AddWords; Format
	// must preserve values exactly.
	b := program.NewBuilder("d")
	b.Block("entry").Halt()
	b.AddWords(program.HeapBase, []uint64{0xDEADBEEF, 1, ^uint64(0)})
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse("d", Format(p))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := vm.New(re, nil)
	if got := m.Mem.Read(program.HeapBase, 8); got != 0xDEADBEEF {
		t.Errorf("word 0 = %#x", got)
	}
	if got := m.Mem.Read(program.HeapBase+16, 8); got != ^uint64(0) {
		t.Errorf("word 2 = %#x", got)
	}
}

func TestNonTemporalSyntax(t *testing.T) {
	src := `
entry:
    load8.nt r1, [r2+r0*8]
    store4.nt r1, [r3]
    load8 r1, [r2]
    halt
`
	p, err := Parse("nt", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.Instrs[0].NT || !p.Instrs[1].NT {
		t.Error("NT flag not parsed")
	}
	if p.Instrs[2].NT {
		t.Error("plain load must not be NT")
	}
	// Round trip through Format.
	re, err := Parse("nt2", Format(p))
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	for i := range p.Instrs {
		if re.Instrs[i] != p.Instrs[i] {
			t.Errorf("instr %d changed: %v -> %v", i, p.Instrs[i], re.Instrs[i])
		}
	}
}

// Property: random builder-constructed programs survive Format -> Parse
// with identical instruction streams.
func TestRandomRoundTripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		b := program.NewBuilder("rt")
		e := b.Block("entry")
		e.MovI(isa.R2, int64(program.HeapBase))
		nBlocks := 1 + r.Intn(4)
		for k := 0; k < nBlocks; k++ {
			blk := b.Block(string(rune('a' + k)))
			for i := 0; i < 2+r.Intn(6); i++ {
				rd := isa.Reg(r.Intn(13))
				rs := isa.Reg(r.Intn(13))
				switch r.Intn(6) {
				case 0:
					blk.Add(rd, rd, rs)
				case 1:
					blk.MovI(rd, r.Int63n(1<<30)-(1<<29))
				case 2:
					blk.Load(rd, uint8(1<<r.Intn(4)), isa.MemIdx(isa.R2, rs, 8, int64(r.Intn(4096))))
				case 3:
					blk.Store(rd, 8, isa.Mem(isa.R2, int64(r.Intn(4096))))
				case 4:
					blk.AddI(rd, rs, int64(r.Intn(100))-50)
				case 5:
					blk.Prefetch(isa.Mem(isa.R2, int64(r.Intn(8192))))
				}
			}
			if r.Intn(2) == 0 && k > 0 {
				blk.BrI(isa.CondLT, isa.R0, int64(r.Intn(100)), string(rune('a'+r.Intn(k))))
			}
		}
		b.Block("zzend").Halt()
		p, err := b.Assemble()
		if err != nil {
			t.Fatalf("trial %d: Assemble: %v", trial, err)
		}
		re, err := Parse("rt", Format(p))
		if err != nil {
			t.Fatalf("trial %d: re-Parse: %v\n%s", trial, err, Format(p))
		}
		if len(re.Instrs) != len(p.Instrs) {
			t.Fatalf("trial %d: %d -> %d instrs", trial, len(p.Instrs), len(re.Instrs))
		}
		for i := range p.Instrs {
			if re.Instrs[i] != p.Instrs[i] {
				t.Fatalf("trial %d instr %d: %v -> %v", trial, i, p.Instrs[i], re.Instrs[i])
			}
		}
	}
}
