package asm

import (
	"testing"

	"umi/internal/vm"
)

// FuzzParse asserts the assembler never panics and that anything it
// accepts is a valid, loadable program (and that formatting it reparses).
// Run with `go test -fuzz=FuzzParse ./internal/asm`; the seed corpus runs
// as part of the normal test suite.
func FuzzParse(f *testing.F) {
	f.Add(sumSrc)
	f.Add("entry:\n  halt\n")
	f.Add(".entry a\na:\n  jmp a\n")
	f.Add("load8 r1, [r2+r3*8+16]\nhalt")
	f.Add(".data 0x1000\n.word 1 2 3")
	f.Add("br.lt r0, r1, 0x400000\nhalt")
	f.Add("bri.geu r0, -12, lbl\nlbl:\nhalt")
	f.Add("load8.nt r1, [+0x8000]\nhalt")
	f.Add("; comment only")
	f.Add("a:\nb:\n  nop")
	f.Add("store4 r1,[sp-8]\nret")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse("fuzz", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted invalid program: %v", err)
		}
		// Accepted programs must be loadable and format/reparse cleanly.
		_ = vm.New(p, nil)
		re, err := Parse("fuzz2", Format(p))
		if err != nil {
			t.Fatalf("Format output does not reparse: %v\n%s", err, Format(p))
		}
		if len(re.Instrs) != len(p.Instrs) {
			t.Fatalf("round trip changed instruction count: %d -> %d",
				len(p.Instrs), len(re.Instrs))
		}
	})
}
