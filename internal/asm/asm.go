// Package asm is a two-pass textual assembler and formatter for guest
// programs. The syntax is the instruction syntax isa.Instr.String() prints,
// plus labels, comments, and data directives, so Format and Parse round
// trip: any assembled program can be dumped to text, edited by hand, and
// re-assembled.
//
//	; sum an array
//	.entry entry
//	entry:
//	    movi r0, 0
//	    movi r6, 100
//	    movi r2, 0x10000000
//	loop:
//	    load8 r1, [r2+r0*8]
//	    add r7, r7, r1
//	    addi r0, r0, 1
//	    br.lt r0, r6, loop
//	    halt
//	.data 0x10000000
//	    .word 1 2 3 4
//
// Branch targets may be labels or absolute addresses (0x...). Instructions
// are laid out sequentially from program.CodeBase.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"umi/internal/isa"
	"umi/internal/program"
)

// Parse assembles source text into a program named name.
func Parse(name, src string) (*program.Program, error) {
	p := &parser{name: name, labels: make(map[string]uint64)}
	return p.parse(src)
}

type parser struct {
	name   string
	labels map[string]uint64
	entry  string
}

type srcLine struct {
	num  int
	text string
}

func (p *parser) parse(src string) (*program.Program, error) {
	// Split into significant lines.
	var lines []srcLine
	for i, raw := range strings.Split(src, "\n") {
		t := raw
		if idx := strings.IndexByte(t, ';'); idx >= 0 {
			t = t[:idx]
		}
		t = strings.TrimSpace(t)
		if t != "" {
			lines = append(lines, srcLine{num: i + 1, text: t})
		}
	}

	// Pass 1: assign addresses to labels; count instructions.
	pc := program.CodeBase
	inData := false
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln.text, ".entry"):
			f := strings.Fields(ln.text)
			if len(f) != 2 {
				return nil, fmt.Errorf("%s:%d: .entry wants one label", p.name, ln.num)
			}
			p.entry = f[1]
		case strings.HasPrefix(ln.text, ".data"):
			inData = true
		case strings.HasPrefix(ln.text, ".word"):
			if !inData {
				return nil, fmt.Errorf("%s:%d: .word outside .data", p.name, ln.num)
			}
		case strings.HasSuffix(ln.text, ":"):
			if inData {
				return nil, fmt.Errorf("%s:%d: label inside .data", p.name, ln.num)
			}
			label := strings.TrimSuffix(ln.text, ":")
			if !validLabel(label) {
				return nil, fmt.Errorf("%s:%d: invalid label %q", p.name, ln.num, label)
			}
			if _, dup := p.labels[label]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate label %q", p.name, ln.num, label)
			}
			p.labels[label] = pc
		default:
			if inData {
				return nil, fmt.Errorf("%s:%d: instruction inside .data", p.name, ln.num)
			}
			pc += isa.InstrBytes
		}
	}

	// Pass 2: emit.
	var instrs []isa.Instr
	var data []program.DataSegment
	var dataAddr uint64
	inData = false
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln.text, ".entry"):
		case strings.HasPrefix(ln.text, ".data"):
			f := strings.Fields(ln.text)
			if len(f) != 2 {
				return nil, fmt.Errorf("%s:%d: .data wants an address", p.name, ln.num)
			}
			a, err := parseUint(f[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", p.name, ln.num, err)
			}
			inData = true
			dataAddr = a
			data = append(data, program.DataSegment{Addr: a})
		case strings.HasPrefix(ln.text, ".word"):
			seg := &data[len(data)-1]
			for _, w := range strings.Fields(ln.text)[1:] {
				v, err := parseUint(w)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", p.name, ln.num, err)
				}
				var b [8]byte
				for i := 0; i < 8; i++ {
					b[i] = byte(v >> (8 * i))
				}
				seg.Bytes = append(seg.Bytes, b[:]...)
			}
			dataAddr += 0 // address advances implicitly with Bytes
		case strings.HasSuffix(ln.text, ":"):
		default:
			in, err := p.parseInstr(ln)
			if err != nil {
				return nil, err
			}
			instrs = append(instrs, in)
		}
	}
	_ = dataAddr

	if len(instrs) == 0 {
		return nil, fmt.Errorf("%s: no instructions", p.name)
	}
	entry := program.CodeBase
	if p.entry != "" {
		a, ok := p.labels[p.entry]
		if !ok {
			return nil, fmt.Errorf("%s: undefined entry label %q", p.name, p.entry)
		}
		entry = a
	}
	prog := &program.Program{
		Name:    p.name,
		Entry:   entry,
		Base:    program.CodeBase,
		Instrs:  instrs,
		Symbols: p.labels,
		Data:    data,
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64)
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// splitOperands splits "r1, [r2+8], 5" respecting no nesting (memrefs have
// no commas).
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (p *parser) errf(ln srcLine, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.name, ln.num, fmt.Sprintf(format, args...))
}

func (p *parser) parseInstr(ln srcLine) (isa.Instr, error) {
	fields := strings.SplitN(ln.text, " ", 2)
	mnemonic := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = fields[1]
	}
	ops := splitOperands(rest)

	reg := func(i int) (isa.Reg, error) {
		if i >= len(ops) {
			return 0, p.errf(ln, "%s: missing operand %d", mnemonic, i+1)
		}
		return parseReg(ops[i])
	}
	imm := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, p.errf(ln, "%s: missing operand %d", mnemonic, i+1)
		}
		return parseInt(ops[i])
	}
	target := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, p.errf(ln, "%s: missing branch target", mnemonic)
		}
		if a, ok := p.labels[ops[i]]; ok {
			return int64(a), nil
		}
		v, err := parseUint(ops[i])
		if err != nil {
			return 0, p.errf(ln, "%s: unknown label or address %q", mnemonic, ops[i])
		}
		return int64(v), nil
	}
	mem := func(i int) (isa.MemRef, error) {
		if i >= len(ops) {
			return isa.NoMem, p.errf(ln, "%s: missing memory operand", mnemonic)
		}
		m, err := parseMemRef(ops[i])
		if err != nil {
			return isa.NoMem, p.errf(ln, "%v", err)
		}
		return m, nil
	}

	// Conditional branches: br.COND / bri.COND.
	if cond, rest, ok := strings.Cut(mnemonic, "."); ok && (cond == "br" || cond == "bri") {
		c, err := parseCond(rest)
		if err != nil {
			return isa.Instr{}, p.errf(ln, "%v", err)
		}
		if cond == "br" {
			r1, err := reg(0)
			if err != nil {
				return isa.Instr{}, err
			}
			r2, err := reg(1)
			if err != nil {
				return isa.Instr{}, err
			}
			t, err := target(2)
			if err != nil {
				return isa.Instr{}, err
			}
			return isa.Instr{Op: isa.OpBr, Cond: c, Rs1: r1, Rs2: r2, Imm: t, Mem: isa.NoMem}, nil
		}
		r1, err := reg(0)
		if err != nil {
			return isa.Instr{}, err
		}
		v, err := imm(1)
		if err != nil {
			return isa.Instr{}, err
		}
		t, err := target(2)
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.OpBrI, Cond: c, Rs1: r1, Imm2: v, Imm: t, Mem: isa.NoMem}, nil
	}

	// Sized memory ops: load1/2/4/8, store1/2/4/8, with an optional .nt
	// (non-temporal) suffix.
	if strings.HasPrefix(mnemonic, "load") || strings.HasPrefix(mnemonic, "store") {
		kind := "load"
		if strings.HasPrefix(mnemonic, "store") {
			kind = "store"
		}
		szStr := strings.TrimPrefix(mnemonic, kind)
		nt := false
		if strings.HasSuffix(szStr, ".nt") {
			nt = true
			szStr = strings.TrimSuffix(szStr, ".nt")
		}
		sz, err := strconv.Atoi(szStr)
		if err != nil || (sz != 1 && sz != 2 && sz != 4 && sz != 8) {
			return isa.Instr{}, p.errf(ln, "bad access size in %q", mnemonic)
		}
		r, err := reg(0)
		if err != nil {
			return isa.Instr{}, err
		}
		m, err := mem(1)
		if err != nil {
			return isa.Instr{}, err
		}
		if kind == "load" {
			return isa.Instr{Op: isa.OpLoad, Rd: r, Size: uint8(sz), NT: nt, Mem: m}, nil
		}
		return isa.Instr{Op: isa.OpStore, Rs1: r, Size: uint8(sz), NT: nt, Mem: m}, nil
	}

	switch mnemonic {
	case "nop":
		return isa.Instr{Op: isa.OpNop, Mem: isa.NoMem}, nil
	case "halt":
		return isa.Instr{Op: isa.OpHalt, Mem: isa.NoMem}, nil
	case "ret":
		return isa.Instr{Op: isa.OpRet, Mem: isa.NoMem}, nil
	case "add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr":
		rd, err := reg(0)
		if err != nil {
			return isa.Instr{}, err
		}
		r1, err := reg(1)
		if err != nil {
			return isa.Instr{}, err
		}
		r2, err := reg(2)
		if err != nil {
			return isa.Instr{}, err
		}
		op := map[string]isa.Op{"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul,
			"div": isa.OpDiv, "and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
			"shl": isa.OpShl, "shr": isa.OpShr}[mnemonic]
		return isa.Instr{Op: op, Rd: rd, Rs1: r1, Rs2: r2, Mem: isa.NoMem}, nil
	case "addi", "muli", "andi", "shri":
		rd, err := reg(0)
		if err != nil {
			return isa.Instr{}, err
		}
		r1, err := reg(1)
		if err != nil {
			return isa.Instr{}, err
		}
		v, err := imm(2)
		if err != nil {
			return isa.Instr{}, err
		}
		op := map[string]isa.Op{"addi": isa.OpAddI, "muli": isa.OpMulI,
			"andi": isa.OpAndI, "shri": isa.OpShrI}[mnemonic]
		return isa.Instr{Op: op, Rd: rd, Rs1: r1, Imm: v, Mem: isa.NoMem}, nil
	case "mov":
		rd, err := reg(0)
		if err != nil {
			return isa.Instr{}, err
		}
		r1, err := reg(1)
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.OpMov, Rd: rd, Rs1: r1, Mem: isa.NoMem}, nil
	case "movi":
		rd, err := reg(0)
		if err != nil {
			return isa.Instr{}, err
		}
		v, err := imm(1)
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.OpMovI, Rd: rd, Imm: v, Mem: isa.NoMem}, nil
	case "prefetch":
		m, err := mem(0)
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.OpPrefetch, Mem: m}, nil
	case "jmp":
		t, err := target(0)
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.OpJmp, Imm: t, Mem: isa.NoMem}, nil
	case "call":
		t, err := target(0)
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.OpCall, Imm: t, Mem: isa.NoMem}, nil
	case "jmpind":
		r1, err := reg(0)
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.OpJmpInd, Rs1: r1, Mem: isa.NoMem}, nil
	}
	return isa.Instr{}, p.errf(ln, "unknown mnemonic %q", mnemonic)
}

func parseReg(s string) (isa.Reg, error) {
	switch s {
	case "sp":
		return isa.SP, nil
	case "bp":
		return isa.BP, nil
	case "lr":
		return isa.LR, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("invalid register %q", s)
}

func parseCond(s string) (isa.Cond, error) {
	conds := map[string]isa.Cond{
		"eq": isa.CondEQ, "ne": isa.CondNE, "lt": isa.CondLT, "ge": isa.CondGE,
		"gt": isa.CondGT, "le": isa.CondLE, "ltu": isa.CondLTU, "geu": isa.CondGEU,
	}
	c, ok := conds[s]
	if !ok {
		return 0, fmt.Errorf("invalid condition %q", s)
	}
	return c, nil
}

// parseMemRef parses "[base+index*scale+disp]" in the forms
// isa.MemRef.String() emits: [r2], [r2+16], [r2-8], [r2+r3*8],
// [r2+r3*8+16], [r3*8-4], [+4096].
func parseMemRef(s string) (isa.MemRef, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return isa.NoMem, fmt.Errorf("invalid memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	m := isa.MemRef{Base: isa.NoReg, Index: isa.NoReg}
	// Tokenize into signed terms.
	var terms []string
	cur := strings.Builder{}
	for i, r := range body {
		if (r == '+' || r == '-') && i > 0 {
			terms = append(terms, cur.String())
			cur.Reset()
			if r == '-' {
				cur.WriteByte('-')
			}
			continue
		}
		cur.WriteRune(r)
	}
	terms = append(terms, cur.String())
	for _, t := range terms {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		switch {
		case strings.Contains(t, "*"):
			idx, scale, ok := strings.Cut(t, "*")
			if !ok {
				return isa.NoMem, fmt.Errorf("invalid index term %q", t)
			}
			r, err := parseReg(idx)
			if err != nil {
				return isa.NoMem, err
			}
			sc, err := strconv.Atoi(scale)
			if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return isa.NoMem, fmt.Errorf("invalid scale %q", scale)
			}
			if m.Index != isa.NoReg {
				return isa.NoMem, fmt.Errorf("duplicate index in %q", s)
			}
			m.Index = r
			m.Scale = uint8(sc)
		case looksLikeReg(t):
			r, err := parseReg(t)
			if err != nil {
				return isa.NoMem, err
			}
			if m.Base != isa.NoReg {
				return isa.NoMem, fmt.Errorf("duplicate base in %q", s)
			}
			m.Base = r
		default:
			v, err := parseInt(t)
			if err != nil {
				return isa.NoMem, fmt.Errorf("invalid displacement %q", t)
			}
			m.Disp += v
		}
	}
	return m, nil
}

func looksLikeReg(t string) bool {
	if t == "sp" || t == "bp" || t == "lr" {
		return true
	}
	if len(t) >= 2 && t[0] == 'r' && t[1] >= '0' && t[1] <= '9' {
		return true
	}
	return false
}

// Format renders a program as re-assemblable source: labels from the
// symbol table, instructions in the String() syntax, and data segments as
// .data/.word directives.
func Format(p *program.Program) string {
	byAddr := make(map[uint64][]string)
	for sym, addr := range p.Symbols {
		byAddr[addr] = append(byAddr[addr], sym)
	}
	var sb strings.Builder
	if len(p.Instrs) > 0 {
		// Emit .entry when the entry point is labelled.
		for sym, addr := range p.Symbols {
			if addr == p.Entry {
				fmt.Fprintf(&sb, ".entry %s\n", sym)
				break
			}
		}
	}
	for i := range p.Instrs {
		pc := p.PCOf(i)
		syms := byAddr[pc]
		sort.Strings(syms)
		for _, s := range syms {
			fmt.Fprintf(&sb, "%s:\n", s)
		}
		fmt.Fprintf(&sb, "    %v\n", p.Instrs[i])
	}
	for _, seg := range p.Data {
		fmt.Fprintf(&sb, ".data %#x\n", seg.Addr)
		for off := 0; off < len(seg.Bytes); off += 8 * 8 {
			sb.WriteString("    .word")
			for w := 0; w < 8 && off+w*8 < len(seg.Bytes); w++ {
				var v uint64
				for b := 0; b < 8 && off+w*8+b < len(seg.Bytes); b++ {
					v |= uint64(seg.Bytes[off+w*8+b]) << (8 * b)
				}
				fmt.Fprintf(&sb, " %#x", v)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
