package prefetch

import (
	"testing"

	"umi/internal/cache"
	"umi/internal/isa"
	"umi/internal/program"
	"umi/internal/rio"
	"umi/internal/umi"
	"umi/internal/vm"
	"umi/internal/workloads"
)

func TestNTApplySelectsStreamingLoads(t *testing.T) {
	f := fragWithLoads()
	o := NewNTOptimizer()
	delinq := map[uint64]bool{f.PCs[0]: true, f.PCs[2]: true}
	strides := map[uint64]umi.StrideInfo{
		f.PCs[0]: {Stride: 64, Confidence: 0.95}, // qualifies
		f.PCs[2]: {Stride: 64, Confidence: 0.10}, // low confidence: no
	}
	nf := o.Apply(f, delinq, strides)
	if nf == nil {
		t.Fatal("no rewrite")
	}
	if !nf.Instrs[0].NT {
		t.Error("streaming load must be marked NT")
	}
	if nf.Instrs[2].NT {
		t.Error("low-confidence load must not be marked NT")
	}
	if f.Instrs[0].NT {
		t.Error("original fragment must be untouched")
	}
	if len(o.Rewritten) != 1 {
		t.Errorf("Rewritten = %v", o.Rewritten)
	}
	// Idempotent: second call finds nothing new.
	if again := o.Apply(nf, delinq, strides); again != nil {
		t.Error("second Apply must be a no-op")
	}
}

func TestHierarchyAccessNTDoesNotPolluteL2(t *testing.T) {
	h := cache.NewP4(false)
	// Fill part of the L2 with a resident set.
	for i := uint64(0); i < 1024; i++ {
		h.Access(0x2000_0000+i*64, 8, false)
	}
	// Stream 8 MiB with NT accesses: none may be installed into L2.
	for addr := uint64(0x4000_0000); addr < 0x4080_0000; addr += 64 {
		h.AccessNT(addr, 8, false)
	}
	// Every resident line must still be in L2 (L1 may have churned).
	for i := uint64(0); i < 1024; i++ {
		if !h.L2.Probe(0x2000_0000 + i*64) {
			t.Fatalf("resident line %d evicted by NT stream", i)
		}
	}
	// The stream itself counted as misses.
	if h.L2Stats.Misses == 0 {
		t.Error("NT misses must be counted")
	}
}

func TestAccessNTHitsResidentLines(t *testing.T) {
	h := cache.NewP4(false)
	h.Access(0x1000_0000, 8, false) // install normally
	// Evict from L1 via conflicting lines.
	for i := uint64(1); i <= 8; i++ {
		h.Access(0x1000_0000+i*8192, 8, false)
	}
	before := h.L2Stats.Misses
	if stall := h.AccessNT(0x1000_0000, 8, false); stall != h.Lat.L2Hit {
		t.Errorf("NT access to resident line stalls %d, want L2 hit %d", stall, h.Lat.L2Hit)
	}
	if h.L2Stats.Misses != before {
		t.Error("NT hit must not count as a miss")
	}
}

// End to end: a program that streams 8 MiB while cycling a 384 KiB
// resident set. Without the bypass, the stream thrashes the resident set
// out of the 512 KiB L2; with UMI's online NT rewrite, the resident set
// stays and total misses drop.
func bypassWorkload(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("bypass")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))          // stream base
	e.MovI(isa.R5, int64(program.HeapBase+(64<<20))) // resident base
	e.MovI(isa.R0, 0)
	e.MovI(isa.R6, 1_000_000)
	l := b.Block("loop")
	l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0)) // stream: 1 line/iter
	l.Add(isa.R7, isa.R7, isa.R1)
	// Six resident loads per iteration, line-strided, wrapping in 384 KiB.
	for j := 0; j < 6; j++ {
		l.AddI(isa.R12, isa.R0, int64(j)*1024)
		l.AndI(isa.R12, isa.R12, (48<<10)-1) // 48K elems = 384 KiB
		l.Load(isa.R4, 8, isa.MemIdx(isa.R5, isa.R12, 8, 0))
		l.Add(isa.R7, isa.R7, isa.R4)
	}
	l.AddI(isa.R0, isa.R0, 8)
	l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestEndToEndBypassReducesMisses(t *testing.T) {
	p := bypassWorkload(t)
	run := func(withNT bool) (uint64, uint64, *NTOptimizer) {
		h := cache.NewP4(false)
		m := vm.New(p, h)
		rt := rio.NewRuntime(m)
		cfg := umi.DefaultConfig(cache.P4L2)
		cfg.SamplePeriod = 500
		cfg.FrequencyThreshold = 4
		cfg.ReinstrumentGap = 100_000
		s := umi.Attach(rt, cfg)
		var o *NTOptimizer
		if withNT {
			o = NewNTOptimizer()
			s.OnAnalyzed = o.Hook()
		}
		if err := rt.Run(100_000_000); err != nil {
			t.Fatalf("Run: %v", err)
		}
		s.Finish()
		return h.L2Stats.Misses, rt.TotalCycles(), o
	}
	baseMiss, baseCycles, _ := run(false)
	ntMiss, ntCycles, o := run(true)
	if o == nil || len(o.Rewritten) == 0 {
		t.Fatal("no loads rewritten to NT")
	}
	if ntMiss >= baseMiss {
		t.Errorf("NT bypass must cut L2 misses: %d >= %d", ntMiss, baseMiss)
	}
	if ntCycles >= baseCycles {
		t.Errorf("NT bypass must speed the program up: %d >= %d cycles", ntCycles, baseCycles)
	}
	t.Logf("misses %d -> %d (%.0f%%), cycles %d -> %d (%.1f%% faster)",
		baseMiss, ntMiss, 100*float64(ntMiss)/float64(baseMiss),
		baseCycles, ntCycles, 100*(1-float64(ntCycles)/float64(baseCycles)))
}

func TestChainComposesOptimizers(t *testing.T) {
	p := bypassWorkload(t)
	h := cache.NewP4(false)
	m := vm.New(p, h)
	rt := rio.NewRuntime(m)
	cfg := umi.DefaultConfig(cache.P4L2)
	cfg.SamplePeriod = 500
	cfg.FrequencyThreshold = 4
	cfg.ReinstrumentGap = 100_000
	s := umi.Attach(rt, cfg)
	pf := NewOptimizer(DefaultConfig)
	nt := NewNTOptimizer()
	s.OnAnalyzed = Chain(pf.Hook(), nt.Hook())
	if err := rt.Run(100_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.Finish()
	if len(pf.Insertions) == 0 && len(nt.Rewritten) == 0 {
		t.Error("chained optimizers did nothing")
	}
}

// TestOptimizersPreserveSemantics runs bundled workloads under the full
// UMI stack with both online optimizers chained and requires the final
// architectural state to match native execution — runtime rewriting must
// be invisible to the program.
func TestOptimizersPreserveSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several workloads twice")
	}
	for _, name := range []string{"171.swim", "181.mcf", "ft", "164.gzip", "treeadd"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, ok := workloads.ByName(name)
			if !ok {
				t.Fatal("workload missing")
			}
			p := w.Program()
			native := vm.New(p, nil)
			if err := native.Run(100_000_000); err != nil {
				t.Fatalf("native: %v", err)
			}

			h := cache.NewP4(false)
			m := vm.New(p, h)
			rt := rio.NewRuntime(m)
			cfg := umi.DefaultConfig(cache.P4L2)
			cfg.SamplePeriod = 1000
			cfg.FrequencyThreshold = 4
			cfg.ReinstrumentGap = 100_000
			s := umi.Attach(rt, cfg)
			s.OnAnalyzed = Chain(NewOptimizer(DefaultConfig).Hook(), NewNTOptimizer().Hook())
			if err := rt.Run(100_000_000); err != nil {
				t.Fatalf("umi: %v", err)
			}
			s.Finish()
			if m.Regs != native.Regs {
				t.Errorf("registers diverged under online optimization:\nnative %v\numi    %v",
					native.Regs, m.Regs)
			}
		})
	}
}
