package prefetch

import (
	"umi/internal/rio"
	"umi/internal/umi"
)

// NTOptimizer is a second online optimization built on UMI's profiles (the
// paper's conclusion: optimizations using UMI "can replace or enhance
// hardware techniques such as prefetchers and cache replacement policies").
// It marks streaming delinquent loads non-temporal, so their lines bypass
// the L2 and stop evicting the resident working set — an online
// cache-replacement enhancement.
//
// Selection rule: a load qualifies when the mini-simulator labelled it
// delinquent AND its reference pattern is a confident stride (streaming
// data with no reuse; pointer chases have no stride and irregular gathers
// no confidence, and both might be re-referenced, so they keep normal
// caching).
type NTOptimizer struct {
	// MinConfidence gates the stride evidence (default 0.60).
	MinConfidence float64
	done          map[uint64]bool
	// Rewritten records the loads marked non-temporal.
	Rewritten []uint64
}

// NewNTOptimizer returns an optimizer with default thresholds.
func NewNTOptimizer() *NTOptimizer {
	return &NTOptimizer{MinConfidence: 0.60, done: make(map[uint64]bool)}
}

// Hook returns the umi.System OnAnalyzed callback performing the rewrite.
func (o *NTOptimizer) Hook() func(*rio.Fragment, *umi.Analyzer) *rio.Fragment {
	return func(clean *rio.Fragment, an *umi.Analyzer) *rio.Fragment {
		return o.Apply(clean, an.Delinquent(), an.Strides())
	}
}

// Apply returns a rewritten fragment with qualifying loads marked
// non-temporal, or nil when nothing qualifies.
func (o *NTOptimizer) Apply(f *rio.Fragment, delinquent map[uint64]bool,
	strides map[uint64]umi.StrideInfo) *rio.Fragment {
	var hits []int
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if !in.Op.IsLoad() || in.NT {
			continue
		}
		pc := f.PCs[i]
		if o.done[pc] || !delinquent[pc] {
			continue
		}
		si, ok := strides[pc]
		if !ok || si.Confidence < o.MinConfidence || si.Stride == 0 {
			continue
		}
		hits = append(hits, i)
	}
	if len(hits) == 0 {
		return nil
	}
	nf := f.Clone()
	for _, i := range hits {
		nf.Instrs[i].NT = true
		o.done[nf.PCs[i]] = true
		o.Rewritten = append(o.Rewritten, nf.PCs[i])
	}
	return nf
}

// Chain composes OnAnalyzed hooks: each receives the previous rewrite (or
// the original fragment) and may refine it further, so the prefetcher and
// the bypass optimizer can run together.
func Chain(hooks ...func(*rio.Fragment, *umi.Analyzer) *rio.Fragment) func(*rio.Fragment, *umi.Analyzer) *rio.Fragment {
	return func(clean *rio.Fragment, an *umi.Analyzer) *rio.Fragment {
		var out *rio.Fragment
		cur := clean
		for _, h := range hooks {
			if nf := h(cur, an); nf != nil {
				cur = nf
				out = nf
			}
		}
		return out
	}
}
