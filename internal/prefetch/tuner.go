package prefetch

import "umi/internal/umi"

// Prefetch-distance tuning from recorded history (§8: "UMI was able to
// pick a prefetch distance that is closer to the optimal prefetching
// distance compared to the hardware prefetcher. This highlights an
// important advantage of UMI, namely that a more detailed analysis of the
// access patterns is possible in software").
//
// For a delinquent load with recorded address column addr[0..n), a
// prefetch at distance d issued during iteration i targets
// addr[i] + stride*d and is useful for iteration i+d when that target
// shares a cache line with addr[i+d] — the *accuracy* of distance d, which
// the recorded history answers exactly. Timeliness requires the prefetch
// to be issued at least latency cycles before use: d * cyclesPerIter >=
// latency. The tuner picks the smallest candidate distance that is both
// timely and accurate, minimizing the prefetch's cache-residency window
// (too-large distances let prefetched lines get evicted before use).

// TuneConfig parameterizes distance selection.
type TuneConfig struct {
	// Candidates are the distances evaluated, ascending.
	Candidates []int64
	// MinAccuracy is the required fraction of iterations whose reference
	// the prefetch would have covered.
	MinAccuracy float64
	// LatencyCycles is the fill latency a timely prefetch must hide.
	LatencyCycles uint64
	// LineSize of the target cache.
	LineSize int64
}

// DefaultTune matches the modelled Pentium 4 memory latency.
var DefaultTune = TuneConfig{
	Candidates:    []int64{1, 2, 4, 8, 16, 32},
	MinAccuracy:   0.7,
	LatencyCycles: 210,
	LineSize:      64,
}

// DistanceAccuracy returns the fraction of iterations d..n-1 whose
// recorded address lands in the line a distance-d prefetch (issued at
// iteration i-d with the given stride) would have fetched.
func DistanceAccuracy(column []uint64, stride, d, lineSize int64) float64 {
	if d <= 0 || int(d) >= len(column) {
		return 0
	}
	covered, total := 0, 0
	mask := ^uint64(lineSize - 1)
	for i := int(d); i < len(column); i++ {
		total++
		target := column[i-int(d)] + uint64(stride*d)
		if target&mask == column[i]&mask {
			covered++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// TuneDistance picks the smallest candidate distance that is timely (d *
// cyclesPerIter >= latency) and accurate against the recorded column. When
// no candidate is both, it returns the most accurate timely candidate;
// with no timely candidate at all it returns the largest. ok reports
// whether the returned distance met MinAccuracy.
func TuneDistance(cfg TuneConfig, column []uint64, stride int64, cyclesPerIter uint64) (int64, bool) {
	if cyclesPerIter == 0 {
		cyclesPerIter = 1
	}
	bestD, bestAcc := int64(0), -1.0
	for _, d := range cfg.Candidates {
		timely := uint64(d)*cyclesPerIter >= cfg.LatencyCycles
		if !timely {
			continue
		}
		acc := DistanceAccuracy(column, stride, d, cfg.LineSize)
		if acc >= cfg.MinAccuracy {
			return d, true
		}
		if acc > bestAcc {
			bestD, bestAcc = d, acc
		}
	}
	if bestD != 0 {
		return bestD, bestAcc >= cfg.MinAccuracy
	}
	// Nothing timely: fall back to the largest candidate.
	if n := len(cfg.Candidates); n > 0 {
		d := cfg.Candidates[n-1]
		return d, DistanceAccuracy(column, stride, d, cfg.LineSize) >= cfg.MinAccuracy
	}
	return 1, false
}

// planTuned augments Plan with history-driven distances when the analyzer
// retained a column for the load. cyclesPerIter comes from the fragment
// length (base cost approximation).
func (o *Optimizer) planTuned(ins *Insertion, an *umi.Analyzer, cyclesPerIter uint64) {
	col, ok := an.Column(ins.PC)
	if !ok || len(col) < 8 {
		return
	}
	if d, good := TuneDistance(o.Tune, col, ins.Stride, cyclesPerIter); good {
		ins.Distance = d
	}
}
