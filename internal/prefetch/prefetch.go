// Package prefetch implements the paper's example runtime optimization
// (§8): a software stride prefetcher driven by UMI's online profiling. For
// every load the mini-simulator labelled delinquent and for which it
// discovered a dominant stride, the optimizer rewrites the load's trace to
// issue a prefetch ahead of the access stream. The rewrite happens at the
// analysis boundary, while the application runs.
package prefetch

import (
	"fmt"

	"umi/internal/isa"
	"umi/internal/rio"
	"umi/internal/umi"
)

// Config tunes the prefetch planner.
type Config struct {
	// MinConfidence is the minimum fraction of successive-address deltas
	// the dominant stride must explain before it is trusted.
	MinConfidence float64
	// LookaheadLines is how many cache lines ahead of the access stream
	// the prefetch should land. The distance in iterations is derived
	// per load from its stride — this is the per-reference tuning that
	// let UMI beat the hardware prefetcher on ft.
	LookaheadLines int
	// MaxDistance caps the derived iteration distance.
	MaxDistance int64
	// LineSize of the target cache.
	LineSize int64
	// MaxStride: strides larger than this (in bytes, absolute) are not
	// prefetched; a huge stride usually means pointer chasing noise.
	MaxStride int64
}

// DefaultConfig matches the evaluation setup.
var DefaultConfig = Config{
	MinConfidence:  0.60,
	LookaheadLines: 4,
	MaxDistance:    64,
	LineSize:       64,
	MaxStride:      4096,
}

// Insertion describes one planned prefetch: before the load at Index in
// the fragment, prefetch its address displaced by Stride*Distance bytes.
type Insertion struct {
	Index    int
	PC       uint64
	Stride   int64
	Distance int64 // iterations ahead
}

// AheadBytes is the displacement the prefetch adds to the load's address.
func (in Insertion) AheadBytes() int64 { return in.Stride * in.Distance }

func (in Insertion) String() string {
	return fmt.Sprintf("prefetch@%#x stride=%d dist=%d (+%d bytes)",
		in.PC, in.Stride, in.Distance, in.AheadBytes())
}

// Optimizer plans and applies prefetch rewrites, remembering which loads
// it has already handled so repeated analyses do not stack prefetches.
type Optimizer struct {
	Cfg Config
	// Tune configures history-driven distance selection; AutoDistance
	// enables it (§8's "closer to the optimal prefetching distance").
	Tune         TuneConfig
	AutoDistance bool
	done         map[uint64]bool
	// Insertions records every applied insertion, for reporting.
	Insertions []Insertion
}

// NewOptimizer returns an optimizer with the given planner config.
func NewOptimizer(cfg Config) *Optimizer {
	return &Optimizer{Cfg: cfg, Tune: DefaultTune, done: make(map[uint64]bool)}
}

// Hook returns the umi.System OnAnalyzed callback that rewrites traces as
// their profiles are analyzed.
func (o *Optimizer) Hook() func(*rio.Fragment, *umi.Analyzer) *rio.Fragment {
	return func(clean *rio.Fragment, an *umi.Analyzer) *rio.Fragment {
		plan := o.Plan(clean, an.Delinquent(), an.Strides())
		if len(plan) == 0 {
			return nil
		}
		if o.AutoDistance {
			// Approximate cycles per trace iteration from base costs.
			var cyclesPerIter uint64
			for i := range clean.Instrs {
				cyclesPerIter += clean.Instrs[i].BaseCost()
			}
			for i := range plan {
				o.planTuned(&plan[i], an, cyclesPerIter)
			}
		}
		return o.Apply(clean, plan)
	}
}

// Plan computes the insertions for a fragment given the delinquent set and
// stride table.
func (o *Optimizer) Plan(f *rio.Fragment, delinquent map[uint64]bool, strides map[uint64]umi.StrideInfo) []Insertion {
	var plan []Insertion
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if !in.Op.IsLoad() {
			continue
		}
		pc := f.PCs[i]
		if o.done[pc] || !delinquent[pc] {
			continue
		}
		si, ok := strides[pc]
		if !ok || si.Confidence < o.Cfg.MinConfidence || si.Stride == 0 {
			continue
		}
		stride := si.Stride
		if stride > o.Cfg.MaxStride || stride < -o.Cfg.MaxStride {
			continue
		}
		dist := o.distance(stride)
		plan = append(plan, Insertion{Index: i, PC: pc, Stride: stride, Distance: dist})
	}
	return plan
}

// distance derives the iteration distance so the prefetch lands about
// LookaheadLines cache lines ahead.
func (o *Optimizer) distance(stride int64) int64 {
	abs := stride
	if abs < 0 {
		abs = -abs
	}
	target := int64(o.Cfg.LookaheadLines) * o.Cfg.LineSize
	d := (target + abs - 1) / abs
	if d < 1 {
		d = 1
	}
	if d > o.Cfg.MaxDistance {
		d = o.Cfg.MaxDistance
	}
	return d
}

// Apply returns a new fragment with the planned prefetches inserted
// immediately before their loads. The prefetch reuses the load's memory
// operand with the lookahead folded into the displacement, and inherits
// the load's application PC (it is runtime-injected code with no
// application address of its own).
func (o *Optimizer) Apply(f *rio.Fragment, plan []Insertion) *rio.Fragment {
	nf := &rio.Fragment{
		ID:      f.ID,
		Start:   f.Start,
		IsTrace: f.IsTrace,
	}
	next := 0
	for i := range f.Instrs {
		if next < len(plan) && plan[next].Index == i {
			ins := plan[next]
			next++
			ld := &f.Instrs[i]
			ref := ld.Mem
			ref.Disp += ins.AheadBytes()
			nf.Instrs = append(nf.Instrs, isa.Instr{Op: isa.OpPrefetch, Mem: ref})
			nf.PCs = append(nf.PCs, f.PCs[i])
			o.done[ins.PC] = true
			o.Insertions = append(o.Insertions, ins)
		}
		nf.Instrs = append(nf.Instrs, f.Instrs[i])
		nf.PCs = append(nf.PCs, f.PCs[i])
	}
	return nf
}
