package prefetch

import (
	"testing"

	"umi/internal/cache"
	"umi/internal/isa"
	"umi/internal/program"
	"umi/internal/rio"
	"umi/internal/umi"
	"umi/internal/vm"
)

func fragWithLoads() *rio.Fragment {
	instrs := []isa.Instr{
		{Op: isa.OpLoad, Rd: isa.R1, Size: 8, Mem: isa.MemIdx(isa.R2, isa.R0, 8, 0)},
		{Op: isa.OpAdd, Rd: isa.R3, Rs1: isa.R3, Rs2: isa.R1, Mem: isa.NoMem},
		{Op: isa.OpLoad, Rd: isa.R4, Size: 8, Mem: isa.Mem(isa.R5, 0)},
		{Op: isa.OpAddI, Rd: isa.R0, Rs1: isa.R0, Imm: 8, Mem: isa.NoMem},
		{Op: isa.OpBr, Cond: isa.CondLT, Rs1: isa.R0, Rs2: isa.R6, Imm: 0x400000, Mem: isa.NoMem},
	}
	pcs := make([]uint64, len(instrs))
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(i)*isa.InstrBytes
	}
	return &rio.Fragment{Start: pcs[0], Instrs: instrs, PCs: pcs, IsTrace: true}
}

func TestPlanSelectsDelinquentStridedLoads(t *testing.T) {
	f := fragWithLoads()
	o := NewOptimizer(DefaultConfig)
	delinq := map[uint64]bool{f.PCs[0]: true}
	strides := map[uint64]umi.StrideInfo{
		f.PCs[0]: {Stride: 64, Confidence: 0.95},
		f.PCs[2]: {Stride: 64, Confidence: 0.95}, // not delinquent
	}
	plan := o.Plan(f, delinq, strides)
	if len(plan) != 1 {
		t.Fatalf("plan = %v, want 1 insertion", plan)
	}
	if plan[0].Index != 0 || plan[0].Stride != 64 {
		t.Errorf("insertion = %+v", plan[0])
	}
	// Lookahead 4 lines at stride 64 = 4 iterations ahead.
	if plan[0].Distance != 4 {
		t.Errorf("distance = %d, want 4", plan[0].Distance)
	}
}

func TestPlanRejectsLowConfidenceAndHugeStrides(t *testing.T) {
	f := fragWithLoads()
	o := NewOptimizer(DefaultConfig)
	delinq := map[uint64]bool{f.PCs[0]: true, f.PCs[2]: true}
	strides := map[uint64]umi.StrideInfo{
		f.PCs[0]: {Stride: 64, Confidence: 0.3},      // low confidence
		f.PCs[2]: {Stride: 1 << 20, Confidence: 0.9}, // huge stride
	}
	if plan := o.Plan(f, delinq, strides); len(plan) != 0 {
		t.Errorf("plan = %v, want empty", plan)
	}
}

func TestDistanceDerivation(t *testing.T) {
	o := NewOptimizer(DefaultConfig)
	cases := []struct {
		stride int64
		want   int64
	}{
		{8, 32},  // small stride: far ahead in iterations
		{64, 4},  // line stride: lookahead lines
		{256, 1}, // big stride: single iteration
		{-64, 4}, // negative stride: same magnitude
		{1, 64},  // capped at MaxDistance (256/1 > 64)
	}
	for _, c := range cases {
		if got := o.distance(c.stride); got != c.want {
			t.Errorf("distance(%d) = %d, want %d", c.stride, got, c.want)
		}
	}
}

func TestApplyInsertsPrefetchBeforeLoad(t *testing.T) {
	f := fragWithLoads()
	o := NewOptimizer(DefaultConfig)
	plan := []Insertion{{Index: 0, PC: f.PCs[0], Stride: 64, Distance: 4}}
	nf := o.Apply(f, plan)
	if len(nf.Instrs) != len(f.Instrs)+1 {
		t.Fatalf("rewritten length = %d, want %d", len(nf.Instrs), len(f.Instrs)+1)
	}
	if nf.Instrs[0].Op != isa.OpPrefetch {
		t.Fatalf("first instr = %v, want prefetch", nf.Instrs[0])
	}
	if nf.Instrs[1].Op != isa.OpLoad {
		t.Fatalf("second instr = %v, want the original load", nf.Instrs[1])
	}
	want := f.Instrs[0].Mem
	want.Disp += 256
	if nf.Instrs[0].Mem != want {
		t.Errorf("prefetch operand = %v, want %v", nf.Instrs[0].Mem, want)
	}
	if nf.PCs[0] != f.PCs[0] {
		t.Error("prefetch must inherit the load's application PC")
	}
	// Idempotence: the load is marked done, a second plan is empty.
	if plan2 := o.Plan(nf, map[uint64]bool{f.PCs[0]: true},
		map[uint64]umi.StrideInfo{f.PCs[0]: {Stride: 64, Confidence: 1}}); len(plan2) != 0 {
		t.Errorf("second plan = %v, want empty (already prefetched)", plan2)
	}
}

// streamProgram walks a large array with 64-byte stride; its single load
// is highly delinquent and perfectly strided.
func streamProgram(t *testing.T, elems int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("stream")
	e := b.Block("entry")
	e.MovI(isa.R0, 0)
	e.MovI(isa.R6, elems)
	e.MovI(isa.R2, int64(program.HeapBase))
	e.MovI(isa.R3, 0)
	l := b.Block("loop")
	l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0))
	l.Add(isa.R3, isa.R3, isa.R1)
	l.AddI(isa.R0, isa.R0, 8)
	l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

// runWithUMI executes the program under UMI, optionally with the software
// prefetcher attached, and returns total modelled cycles and the hierarchy.
func runWithUMI(t *testing.T, p *program.Program, withPrefetch bool) (uint64, *cache.Hierarchy, *Optimizer) {
	t.Helper()
	h := cache.NewP4(false)
	m := vm.New(p, h)
	rt := rio.NewRuntime(m)
	cfg := umi.DefaultConfig(cache.P4L2)
	cfg.SamplePeriod = 500
	cfg.FrequencyThreshold = 4
	cfg.ReinstrumentGap = 100_000
	s := umi.Attach(rt, cfg)
	var o *Optimizer
	if withPrefetch {
		o = NewOptimizer(DefaultConfig)
		s.OnAnalyzed = o.Hook()
	}
	if err := rt.Run(100_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.Finish()
	return rt.TotalCycles(), h, o
}

func TestEndToEndPrefetchingSpeedsUpStream(t *testing.T) {
	p := streamProgram(t, 1_000_000)
	base, hBase, _ := runWithUMI(t, p, false)
	opt, hOpt, o := runWithUMI(t, p, true)
	if o == nil || len(o.Insertions) == 0 {
		t.Fatal("optimizer inserted no prefetches")
	}
	if hOpt.L2Stats.PrefetchedHits == 0 {
		t.Fatal("no useful prefetches at the hierarchy")
	}
	if opt >= base {
		t.Errorf("prefetching must speed up the stream: %d >= %d cycles", opt, base)
	}
	speedup := float64(base) / float64(opt)
	if speedup < 1.05 {
		t.Errorf("speedup = %.3f, want >= 1.05 on a pure stream", speedup)
	}
	if hOpt.L2Stats.Misses >= hBase.L2Stats.Misses {
		t.Errorf("L2 misses with prefetch %d >= without %d",
			hOpt.L2Stats.Misses, hBase.L2Stats.Misses)
	}
}

func TestDistanceAccuracy(t *testing.T) {
	// Pure stride-64 column: any distance is perfectly accurate.
	col := make([]uint64, 64)
	for i := range col {
		col[i] = uint64(i) * 64
	}
	for _, d := range []int64{1, 4, 16} {
		if acc := DistanceAccuracy(col, 64, d, 64); acc != 1.0 {
			t.Errorf("pure stride accuracy(d=%d) = %.2f, want 1.0", d, acc)
		}
	}
	// A column that restarts every 8 iterations (inner loop re-entry):
	// large distances cross the restart and lose accuracy.
	restart := make([]uint64, 64)
	for i := range restart {
		restart[i] = uint64(i%8) * 64
	}
	small := DistanceAccuracy(restart, 64, 1, 64)
	large := DistanceAccuracy(restart, 64, 16, 64)
	if small <= large {
		t.Errorf("restarting column: accuracy(1)=%.2f must exceed accuracy(16)=%.2f",
			small, large)
	}
	if DistanceAccuracy(col, 64, 0, 64) != 0 || DistanceAccuracy(col, 64, 100, 64) != 0 {
		t.Error("degenerate distances must report 0")
	}
}

func TestTuneDistancePrefersSmallestTimely(t *testing.T) {
	col := make([]uint64, 64)
	for i := range col {
		col[i] = uint64(i) * 64
	}
	cfg := DefaultTune
	// Slow iterations: even distance 1 hides the latency.
	d, ok := TuneDistance(cfg, col, 64, 300)
	if !ok || d != 1 {
		t.Errorf("slow loop: d=%d ok=%v, want 1 true", d, ok)
	}
	// Fast iterations (20 cycles): need d >= ceil(210/20) = 11 -> 16.
	d, ok = TuneDistance(cfg, col, 64, 20)
	if !ok || d != 16 {
		t.Errorf("fast loop: d=%d ok=%v, want 16 true", d, ok)
	}
	// Restarting column with fast iterations: no distance is both timely
	// and accurate; the tuner still returns its best timely guess.
	restart := make([]uint64, 64)
	for i := range restart {
		restart[i] = uint64(i%4) * 64
	}
	_, ok = TuneDistance(cfg, restart, 64, 20)
	if ok {
		t.Error("restarting fast loop must report no accurate distance")
	}
	// Ultra-fast loop where nothing is timely: falls back to largest.
	tiny := TuneConfig{Candidates: []int64{1, 2}, MinAccuracy: 0.7,
		LatencyCycles: 1000, LineSize: 64}
	d, _ = TuneDistance(tiny, col, 64, 1)
	if d != 2 {
		t.Errorf("untimely fallback d=%d, want largest candidate 2", d)
	}
}

func TestAutoDistanceEndToEnd(t *testing.T) {
	// The stream loop is short (fast iterations): the tuner must choose a
	// larger distance than the static lookahead heuristic's 4.
	p := streamProgram(t, 1_000_000)
	h := cache.NewP4(false)
	m := vm.New(p, h)
	rt := rio.NewRuntime(m)
	cfg := umi.DefaultConfig(cache.P4L2)
	cfg.SamplePeriod = 500
	cfg.FrequencyThreshold = 4
	cfg.ReinstrumentGap = 100_000
	s := umi.Attach(rt, cfg)
	o := NewOptimizer(DefaultConfig)
	o.AutoDistance = true
	s.OnAnalyzed = o.Hook()
	if err := rt.Run(100_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.Finish()
	if len(o.Insertions) == 0 {
		t.Fatal("no insertions")
	}
	ins := o.Insertions[0]
	// Loop body ~7 instructions => ~10 cycles/iter: timely needs d >= 16
	// (in DefaultTune's candidate ladder) against the 210-cycle latency.
	if ins.Distance < 16 {
		t.Errorf("tuned distance = %d, want >= 16 for a fast loop", ins.Distance)
	}
}
