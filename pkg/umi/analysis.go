package umi

import (
	"umi/internal/cache"
	iumi "umi/internal/umi"
)

// Additional analyses (the paper's "customizable" profile analyzer, §2):
// working-set characterization, reference-pattern classification, and
// what-if cache exploration, all computed from the same profiled bursts.

// Re-exported analysis types.
type (
	// WorkingSet characterizes distinct lines touched and reuse
	// distances.
	WorkingSet = iumi.WorkingSet
	// PatternCensus classifies per-operation reference patterns.
	PatternCensus = iumi.PatternCensus
	// WhatIf mini-simulates alternative cache geometries.
	WhatIf = iumi.WhatIf
	// WhatIfResult is one geometry's outcome.
	WhatIfResult = iumi.WhatIfResult
	// Pattern labels a reference pattern.
	Pattern = iumi.Pattern
	// CacheConfig describes a cache geometry for what-if exploration.
	CacheConfig = cache.Config
)

// Pattern values.
const (
	PatternUnknown   = iumi.PatternUnknown
	PatternConstant  = iumi.PatternConstant
	PatternStrided   = iumi.PatternStrided
	PatternIrregular = iumi.PatternIrregular
)

// PentiumL2 returns the modelled Pentium 4 L2 geometry, a convenient base
// for what-if variations.
func PentiumL2() CacheConfig { return cache.P4L2 }

// K7L2 returns the modelled AMD K7 L2 geometry.
func K7L2() CacheConfig { return cache.K7L2 }

// WithWorkingSet attaches working-set characterization; read the results
// with Session.WorkingSet after Run.
func WithWorkingSet() Option {
	return func(s *Session) { s.wantWorkingSet = true }
}

// WithPatternCensus attaches reference-pattern classification; read the
// results with Session.Patterns after Run.
func WithPatternCensus() Option {
	return func(s *Session) { s.wantPatterns = true }
}

// WithWhatIf attaches what-if cache exploration over the given geometries;
// read the results with Session.WhatIfResults after Run.
func WithWhatIf(configs ...CacheConfig) Option {
	return func(s *Session) { s.whatIfConfigs = configs }
}

// WorkingSet returns the working-set analysis (nil unless WithWorkingSet
// was used and Run completed).
func (s *Session) WorkingSet() *WorkingSet { return s.workingSet }

// Patterns returns the pattern census (nil unless WithPatternCensus was
// used and Run completed).
func (s *Session) Patterns() *PatternCensus { return s.patterns }

// WhatIfResults returns per-geometry outcomes (nil unless WithWhatIf was
// used and Run completed).
func (s *Session) WhatIfResults() []WhatIfResult {
	if s.whatIf == nil {
		return nil
	}
	return s.whatIf.Results()
}
