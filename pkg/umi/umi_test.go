package umi

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"umi/internal/isa"
	"umi/internal/program"
)

// demo builds a streaming workload with one delinquent strided load.
func demo(t *testing.T) *Program {
	t.Helper()
	b := NewProgram("demo")
	e := b.Block("entry")
	e.MovI(isa.R0, 0)
	e.MovI(isa.R6, 400_000)
	e.MovI(isa.R2, int64(program.HeapBase))
	l := b.Block("loop")
	l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0))
	l.Add(isa.R7, isa.R7, isa.R1)
	l.AddI(isa.R0, isa.R0, 8)
	l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestSessionBasic(t *testing.T) {
	p := demo(t)
	sess := NewSession(p)
	rep, err := sess.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep == nil || sess.Report() != rep {
		t.Fatal("report plumbing broken")
	}
	if len(rep.Delinquent) == 0 {
		t.Error("streaming load must be predicted delinquent")
	}
	if sess.HardwareMissRatio() <= 0.5 {
		t.Errorf("hardware miss ratio = %.3f, want streaming-high", sess.HardwareMissRatio())
	}
	if sess.TotalCycles() == 0 || sess.GuestInstructions() == 0 {
		t.Error("cycle accounting missing")
	}
	if _, err := sess.Run(); !errors.Is(err, ErrAlreadyRun) {
		t.Errorf("second Run = %v, want ErrAlreadyRun", err)
	}
}

func TestSessionK7(t *testing.T) {
	p := demo(t)
	sess := NewSession(p, WithMachine(AMDK7))
	if _, err := sess.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sess.HardwareMissRatio() <= 0 {
		t.Error("K7 run produced no hardware statistics")
	}
}

func TestSessionSoftwarePrefetch(t *testing.T) {
	p := demo(t)
	plain := NewSession(p)
	if _, err := plain.Run(); err != nil {
		t.Fatalf("plain: %v", err)
	}
	pf := NewSession(p, WithSoftwarePrefetch())
	if _, err := pf.Run(); err != nil {
		t.Fatalf("prefetch: %v", err)
	}
	if pf.PrefetchesInserted() == 0 {
		t.Fatal("no prefetches inserted")
	}
	if pf.TotalCycles() >= plain.TotalCycles() {
		t.Errorf("prefetching did not speed up the stream: %d >= %d",
			pf.TotalCycles(), plain.TotalCycles())
	}
	if pf.HardwareL2Misses() >= plain.HardwareL2Misses() {
		t.Errorf("prefetching did not cut misses: %d >= %d",
			pf.HardwareL2Misses(), plain.HardwareL2Misses())
	}
}

func TestSessionOptions(t *testing.T) {
	p := demo(t)
	sess := NewSession(p,
		WithHWPrefetch(),
		WithoutSampling(),
		WithFrequencyThreshold(4),
		WithSamplePeriod(1000),
		WithAddressProfileRows(128),
		WithGlobalDelinquencyThreshold(0.5),
		WithMaxInstructions(50_000_000),
	)
	if _, err := sess.Run(); err != nil {
		t.Fatalf("Run with options: %v", err)
	}
}

func TestSessionBudget(t *testing.T) {
	p := demo(t)
	sess := NewSession(p, WithMaxInstructions(1000))
	if _, err := sess.Run(); err == nil {
		t.Error("tiny budget must surface the runtime error")
	}
}

func TestSessionAnalyses(t *testing.T) {
	quarter := PentiumL2()
	quarter.Size /= 4
	quarter.Name = "L2/4"
	sess := NewSession(demo(t),
		WithWorkingSet(),
		WithPatternCensus(),
		WithWhatIf(quarter, PentiumL2()),
	)
	if _, err := sess.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ws := sess.WorkingSet()
	if ws == nil || ws.Refs == 0 || ws.DistinctLines() == 0 {
		t.Fatalf("working set missing or empty: %v", ws)
	}
	pats := sess.Patterns()
	if pats == nil {
		t.Fatal("pattern census missing")
	}
	if got := pats.Counts()[PatternStrided]; got == 0 {
		t.Errorf("strided pattern not detected: %v", pats.Summary())
	}
	res := sess.WhatIfResults()
	if len(res) != 2 || res[0].Accesses == 0 {
		t.Fatalf("what-if results = %+v", res)
	}
}

func TestSessionAnalysesNilBeforeOptIn(t *testing.T) {
	sess := NewSession(demo(t))
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if sess.WorkingSet() != nil || sess.Patterns() != nil || sess.WhatIfResults() != nil {
		t.Error("analyses must be nil without opt-in")
	}
}

func TestSessionEventTrace(t *testing.T) {
	p := demo(t)
	plain := NewSession(p)
	if _, err := plain.Run(); err != nil {
		t.Fatalf("plain: %v", err)
	}
	if plain.EventLog() != nil || plain.Events() != nil {
		t.Error("event log must be nil without WithEventTrace")
	}
	traced := NewSession(p, WithEventTrace(0))
	if _, err := traced.Run(); err != nil {
		t.Fatalf("traced: %v", err)
	}
	evs := traced.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	// Tracing must not perturb the modelled run.
	if got, want := traced.TotalCycles(), plain.TotalCycles(); got != want {
		t.Errorf("TotalCycles with trace = %d, without = %d", got, want)
	}
	if got, want := traced.Report().String(), plain.Report().String(); got != want {
		t.Errorf("Report with trace = %s, without = %s", got, want)
	}
	// The renderers are reachable through the public surface.
	if out := FormatTimeline(evs, traced.EventLog().Drops()); out == "" {
		t.Error("FormatTimeline returned empty output")
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("Chrome trace is not valid JSON")
	}
}

func TestSessionCacheBypass(t *testing.T) {
	sess := NewSession(demo(t), WithCacheBypass())
	if _, err := sess.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sess.LoadsBypassed() == 0 {
		t.Error("streaming load must be rewritten to bypass")
	}
}

func TestSessionHistory(t *testing.T) {
	p := demo(t)
	sess := NewSession(p, WithHistory(4))
	if v := sess.History(); v.Total != 0 || len(v.Windows) != 0 || v.Schema == "" {
		t.Fatalf("pre-Run history = %+v, want empty schema-stamped view", v)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v := sess.History()
	if v.Schema != "umi-history/v1" {
		t.Errorf("schema = %q", v.Schema)
	}
	if v.Total == 0 || len(v.Windows) == 0 {
		t.Fatalf("history empty after a profiled run: %+v", v)
	}
	if v.Cap != 4 || len(v.Windows) > 4 {
		t.Errorf("ring cap not honored: cap=%d retained=%d", v.Cap, len(v.Windows))
	}
	if int(v.Total) != sess.Report().AnalyzerInvocations {
		t.Errorf("Total = %d, want %d analyzer invocations",
			v.Total, sess.Report().AnalyzerInvocations)
	}
	out := FormatHistory(v.Windows)
	if out == "" || out == FormatHistory(nil) {
		t.Errorf("FormatHistory render = %q", out)
	}

	// WithHistory(-1) disables capture without touching the report.
	off := NewSession(p, WithHistory(-1))
	if _, err := off.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v := off.History(); v.Total != 0 || len(v.Windows) != 0 {
		t.Errorf("disabled history = %+v, want empty", v)
	}
	if a, b := off.Report().String(), sess.Report().String(); a != b {
		t.Errorf("history setting perturbed the report:\n%s\nvs\n%s", a, b)
	}
}
