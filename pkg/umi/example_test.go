package umi_test

import (
	"fmt"
	"log"
	"sort"

	"umi/internal/isa"
	"umi/internal/program"
	"umi/pkg/umi"
)

// buildStream constructs a deterministic streaming workload: one load
// walking a large array a cache line per iteration.
func buildStream() *umi.Program {
	b := umi.NewProgram("example")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.MovI(isa.R0, 0)
	e.MovI(isa.R6, 800_000)
	l := b.Block("loop")
	l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0))
	l.Add(isa.R7, isa.R7, isa.R1)
	l.AddI(isa.R0, isa.R0, 8)
	l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// Example runs a session and reports the delinquent loads UMI discovered
// online, with their strides.
func Example() {
	sess := umi.NewSession(buildStream())
	report, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	var pcs []uint64
	for pc := range report.Delinquent {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		fmt.Printf("delinquent load at %#x, stride %+d bytes\n",
			pc, report.Strides[pc].Stride)
	}
	// Output:
	// delinquent load at 0x400040, stride +64 bytes
}

// ExampleWithSoftwarePrefetch shows the online optimization loop: the
// session profiles, rewrites the hot trace with prefetches, and the same
// run finishes faster.
func ExampleWithSoftwarePrefetch() {
	prog := buildStream()
	plain := umi.NewSession(prog)
	if _, err := plain.Run(); err != nil {
		log.Fatal(err)
	}
	fast := umi.NewSession(prog, umi.WithSoftwarePrefetch())
	if _, err := fast.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefetches injected: %d\n", fast.PrefetchesInserted())
	fmt.Printf("faster: %v\n", fast.TotalCycles() < plain.TotalCycles())
	// Output:
	// prefetches injected: 1
	// faster: true
}

// ExampleWithWhatIf asks, from one profiled run, how the program would
// behave under a different cache size.
func ExampleWithWhatIf() {
	double := umi.PentiumL2()
	double.Size *= 2
	double.Name = "L2x2"
	sess := umi.NewSession(buildStream(), umi.WithWhatIf(umi.PentiumL2(), double))
	if _, err := sess.Run(); err != nil {
		log.Fatal(err)
	}
	for _, r := range sess.WhatIfResults() {
		fmt.Printf("%s: streaming stays streaming (ratio %.2f)\n", r.Config.Name, r.MissRatio)
	}
	// Output:
	// P4-L2: streaming stays streaming (ratio 1.00)
	// L2x2: streaming stays streaming (ratio 1.00)
}
