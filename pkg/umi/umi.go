// Package umi is the public interface to the Ubiquitous Memory
// Introspection library: online, lightweight, instruction-granularity
// memory-behaviour profiling of guest programs via bursty trace
// instrumentation and fast cache mini-simulations (Zhao et al., CGO 2007).
//
// The typical flow:
//
//	prog := ...                            // build a guest program
//	sess := umi.NewSession(prog)           // defaults: Pentium 4 model
//	report, err := sess.Run()
//	for pc := range report.Delinquent {    // delinquent loads, strides, ...
//		...
//	}
//
// Options select the hardware model (Pentium4, AMDK7), toggle sampling
// reinforcement and the online software prefetcher, and expose the UMI
// parameters from the paper (frequency threshold, address-profile
// geometry, delinquency thresholds).
package umi

import (
	"errors"
	"fmt"
	"io"

	"umi/internal/cache"
	"umi/internal/metrics"
	"umi/internal/prefetch"
	"umi/internal/program"
	"umi/internal/rio"
	"umi/internal/tracelog"
	iumi "umi/internal/umi"
	"umi/internal/vm"
)

// Re-exported result types.
type (
	// Report is the profiling summary of one session.
	Report = iumi.Report
	// OpStat is the mini-simulated behaviour of one memory operation.
	OpStat = iumi.OpStat
	// StrideInfo is a discovered dominant stride.
	StrideInfo = iumi.StrideInfo
	// MetricsSnapshot is a point-in-time copy of the runtime's
	// self-observability metrics: counters, gauges with high-water marks,
	// and latency histograms. It marshals with encoding/json and renders
	// deterministically with String.
	MetricsSnapshot = metrics.Snapshot
	// Event is one structured lifecycle event recorded by WithEventTrace:
	// a typed record (trace promoted/instrumented/deinstrumented, profile
	// fill, analyzer invocation span, cache flush, pipeline hand-off)
	// stamped with the modelled guest-cycle clock. The Seq and WallNs
	// fields are the only non-deterministic content.
	Event = tracelog.Event
	// EventLog is the ring-buffered event timeline: bounded memory,
	// oldest events dropped (and counted) on overflow, snapshot-safe from
	// any goroutine.
	EventLog = tracelog.Log
	// WindowSummary is one analyzer invocation's compact record of memory
	// behaviour: window and cumulative miss ratios, delinquent-set size,
	// membership hash and churn against the previous window, stride mix,
	// and working-set lines, stamped with the modelled cycle clock.
	WindowSummary = iumi.WindowSummary
	// HistoryView is a snapshot of the profile-history ring: total and
	// retained window counts, phase-change accounting, and the windows
	// themselves, oldest first.
	HistoryView = iumi.HistoryView
	// OverheadReport attributes a run's introspection cost per stage:
	// modelled cycles (deterministic) and measured wall-ns, each as a
	// ratio against the guest's own cost.
	OverheadReport = iumi.OverheadReport
	// StageCost is one introspection stage's share of an OverheadReport.
	StageCost = iumi.StageCost
	// Program is an assembled guest program.
	Program = program.Program
	// Builder constructs guest programs.
	Builder = program.Builder
)

// NewProgram returns a builder for a guest program with the given name.
func NewProgram(name string) *Builder { return program.NewBuilder(name) }

// Machine selects the modelled hardware platform.
type Machine int

// Supported hardware models (§6 of the paper).
const (
	Pentium4 Machine = iota
	AMDK7
)

// Option configures a Session.
type Option func(*Session)

// WithMachine selects the hardware model (default Pentium4).
func WithMachine(m Machine) Option { return func(s *Session) { s.machine = m } }

// WithHWPrefetch enables the platform's hardware prefetchers (Pentium 4
// only; the K7 has none).
func WithHWPrefetch() Option { return func(s *Session) { s.hwPrefetch = true } }

// WithSoftwarePrefetch attaches the online software stride prefetcher at
// the analysis boundary (§8).
func WithSoftwarePrefetch() Option { return func(s *Session) { s.swPrefetch = true } }

// WithCacheBypass attaches the online non-temporal rewriter: streaming
// delinquent loads are marked to bypass the L2, protecting the resident
// working set (the cache-replacement enhancement the paper's conclusion
// proposes). Composes with WithSoftwarePrefetch.
func WithCacheBypass() Option { return func(s *Session) { s.ntBypass = true } }

// WithoutSampling disables sample-based region-selection reinforcement:
// every trace is instrumented at creation.
func WithoutSampling() Option {
	return func(s *Session) { s.cfgEdit = append(s.cfgEdit, func(c *iumi.Config) { c.UseSampling = false }) }
}

// WithFrequencyThreshold sets the sampling frequency threshold (§2).
func WithFrequencyThreshold(n int) Option {
	return func(s *Session) {
		s.cfgEdit = append(s.cfgEdit, func(c *iumi.Config) { c.FrequencyThreshold = n })
	}
}

// WithSamplePeriod sets the PC-sampling period in retired instructions.
func WithSamplePeriod(n uint64) Option {
	return func(s *Session) {
		s.cfgEdit = append(s.cfgEdit, func(c *iumi.Config) { c.SamplePeriod = n })
	}
}

// WithAddressProfileRows sets the executions recorded per trace profile.
func WithAddressProfileRows(n int) Option {
	return func(s *Session) {
		s.cfgEdit = append(s.cfgEdit, func(c *iumi.Config) { c.AddressProfileRows = n })
	}
}

// WithGlobalDelinquencyThreshold replaces the adaptive per-trace
// delinquency threshold with a fixed global alpha.
func WithGlobalDelinquencyThreshold(alpha float64) Option {
	return func(s *Session) {
		s.cfgEdit = append(s.cfgEdit, func(c *iumi.Config) {
			c.Adaptive = false
			c.DelinquencyInit = alpha
		})
	}
}

// WithAnalyzerWorkers sets the width of the asynchronous profile-analysis
// pipeline: at n ≥ 2, filled address profiles are handed off over bounded
// channels to n preparation workers feeding a single cache-simulation
// sequencer, so the guest keeps executing while analysis proceeds on
// other cores. Reports are identical for every n — profiles are merged in
// a fixed PC-sorted order regardless of worker count. At n ≤ 1 (the
// default) the analyzer runs inline on the guest thread. Sessions with
// WithSoftwarePrefetch or WithCacheBypass fall back to the inline path:
// their optimizers need analysis results at the deinstrument boundary.
func WithAnalyzerWorkers(n int) Option {
	return func(s *Session) {
		s.cfgEdit = append(s.cfgEdit, func(c *iumi.Config) { c.AnalyzerWorkers = n })
	}
}

// WithMaxInstructions bounds the run (default 200M).
func WithMaxInstructions(n uint64) Option { return func(s *Session) { s.maxInstrs = n } }

// WithMetricsSink registers a periodic self-observability emitter: fn
// receives a MetricsSnapshot after each analyzer invocation, on the guest
// thread. Collection is always on regardless of this option — the sink
// only adds delivery — so profiling results are identical with or without
// it. fn must not call back into the Session.
func WithMetricsSink(fn func(MetricsSnapshot)) Option {
	return func(s *Session) { s.metricsSink = fn }
}

// WithEventTrace attaches a structured event timeline of the given ring
// capacity (0 selects the default, 65536 events). Recording is purely
// observational — every event is stamped with the modelled cycle clock and
// never feeds back into modelled state — so profiling reports are
// byte-identical with or without it. Snapshot the log at any time via
// Events(); render with tracelog.Timeline or export Chrome trace-event
// JSON (loadable in Perfetto) with WriteChromeTrace.
func WithEventTrace(capacity int) Option {
	return func(s *Session) {
		s.traceEvents = true
		s.traceCapacity = capacity
	}
}

// WithHistory bounds the profile-history ring at n trailing windows
// (0 keeps the default, 64; negative disables capture). Capture reads only
// modelled analyzer state after each invocation and never feeds back into
// results, so profiling reports are byte-identical at any setting.
func WithHistory(n int) Option {
	return func(s *Session) {
		s.cfgEdit = append(s.cfgEdit, func(c *iumi.Config) { c.HistoryWindows = n })
	}
}

// FormatHistory renders window summaries as the CLIs' phase-history
// section: one deterministic line per analyzer invocation with window and
// cumulative miss ratios, delinquent-set churn, and phase-change markers.
func FormatHistory(windows []WindowSummary) string { return iumi.FormatHistory(windows) }

// WithBurstSampling enables Examem-style burst sampling of trace
// instrumentation: an instrumented trace records only 1-in-period of its
// executions, on a deterministic schedule derived from seed and the
// trace's start PC; skipped executions run without profiling hooks,
// paying only the prolog conditional. period ≤ 1 disables. Sampled runs
// remain byte-identical across analyzer worker counts for a fixed seed.
func WithBurstSampling(period int, seed uint64) Option {
	return func(s *Session) {
		s.cfgEdit = append(s.cfgEdit, func(c *iumi.Config) {
			c.BurstPeriod = period
			c.SamplerSeed = seed
		})
	}
}

// WithRowReservoir caps the rows a profile physically retains at n:
// beyond the cap, each recorded execution replaces a deterministic
// pseudo-random resident or is dropped (classic reservoir sampling), so
// the analyzer replays a uniform sample of the burst at a fraction of the
// simulation cost. 0 disables.
func WithRowReservoir(n int) Option {
	return func(s *Session) {
		s.cfgEdit = append(s.cfgEdit, func(c *iumi.Config) { c.ReservoirRows = n })
	}
}

// WithAdaptiveSampling enables history-driven adaptation: after
// stableWindows consecutive analyzer windows without a phase change the
// sampler halves the per-trace row target and doubles the
// reinstrumentation cooldown (one level per step, bounded); any
// phase-change flag re-arms full profiling immediately. stableWindows ≤ 0
// selects the default (4). Adaptation reads analysis results at the
// deinstrument boundary, so such sessions run the inline analysis path.
func WithAdaptiveSampling(stableWindows int) Option {
	return func(s *Session) {
		s.cfgEdit = append(s.cfgEdit, func(c *iumi.Config) {
			c.AdaptSampling = true
			c.AdaptStableWindows = stableWindows
		})
	}
}

// FormatOverhead renders the deterministic per-stage attribution table
// (modelled cycles); FormatOverheadLive renders the measured-wall view.
func FormatOverhead(r *OverheadReport) string { return r.String() }

// FormatOverheadLive renders the wall-clock half of an overhead report.
func FormatOverheadLive(r *OverheadReport) string { return r.LiveString() }

// WriteChromeTrace serializes recorded events as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing: analyzer invocations as
// duration spans per component track, lifecycle events as instants, and
// derived counter tracks for delinquent-set size and pipeline queue depth.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return tracelog.WriteChromeTrace(w, events)
}

// FormatTimeline renders events as the deterministic plain-text timeline.
func FormatTimeline(events []Event, drops uint64) string {
	return tracelog.Timeline(events, drops)
}

// FormatMetrics renders a snapshot as the CLIs' self-overhead section:
// headline rates (candidate filter rate, analysis latency summary, queue
// pressure) followed by the full name-sorted registry dump.
func FormatMetrics(snap MetricsSnapshot) string { return iumi.FormatMetrics(snap) }

// FilterRate extracts the candidate-operation filter rate from a snapshot
// (the paper reports ~80% of candidate memory operations filtered); ok is
// false when the session saw no candidates.
func FilterRate(snap MetricsSnapshot) (rate float64, ok bool) { return iumi.FilterRate(snap) }

// Session executes one program under the full UMI stack.
type Session struct {
	prog        *Program
	machine     Machine
	hwPrefetch  bool
	swPrefetch  bool
	ntBypass    bool
	maxInstrs   uint64
	cfgEdit     []func(*iumi.Config)
	metricsSink func(MetricsSnapshot)

	traceEvents   bool
	traceCapacity int

	wantWorkingSet bool
	wantPatterns   bool
	whatIfConfigs  []CacheConfig

	// populated by Run
	report     *Report
	metrics    MetricsSnapshot
	hierarchy  *cache.Hierarchy
	runtime    *rio.Runtime
	optimizer  *prefetch.Optimizer
	ntOpt      *prefetch.NTOptimizer
	workingSet *WorkingSet
	patterns   *PatternCensus
	whatIf     *WhatIf
	events     *tracelog.Log
	history    HistoryView
	overhead   *OverheadReport
}

// NewSession prepares a session for the program.
func NewSession(p *Program, opts ...Option) *Session {
	s := &Session{prog: p, maxInstrs: 200_000_000}
	for _, o := range opts {
		o(s)
	}
	return s
}

// ErrAlreadyRun is returned when Run is called twice on one session.
var ErrAlreadyRun = errors.New("umi: session already run")

// Run executes the program to completion under UMI and returns the
// profiling report.
func (s *Session) Run() (*Report, error) {
	if s.report != nil {
		return nil, ErrAlreadyRun
	}
	var h *cache.Hierarchy
	var l2 cache.Config
	switch s.machine {
	case AMDK7:
		h = cache.NewK7()
		l2 = cache.K7L2
	default:
		h = cache.NewP4(s.hwPrefetch)
		l2 = cache.P4L2
	}
	m := vm.New(s.prog, h)
	rt := rio.NewRuntime(m)
	cfg := iumi.DefaultConfig(l2)
	cfg.SamplePeriod = 2_000
	cfg.FrequencyThreshold = 8
	cfg.ReinstrumentGap = 100_000
	for _, edit := range s.cfgEdit {
		edit(&cfg)
	}
	sys := iumi.Attach(rt, cfg)
	var hooks []func(*rio.Fragment, *iumi.Analyzer) *rio.Fragment
	if s.swPrefetch {
		s.optimizer = prefetch.NewOptimizer(prefetch.DefaultConfig)
		hooks = append(hooks, s.optimizer.Hook())
	}
	if s.ntBypass {
		s.ntOpt = prefetch.NewNTOptimizer()
		hooks = append(hooks, s.ntOpt.Hook())
	}
	if len(hooks) > 0 {
		sys.OnAnalyzed = prefetch.Chain(hooks...)
	}
	if s.metricsSink != nil {
		sys.OnMetrics = s.metricsSink
	}
	if s.traceEvents {
		s.events = sys.EnableEventTrace(s.traceCapacity)
	}
	if s.wantWorkingSet {
		s.workingSet = iumi.NewWorkingSet(l2.LineSize)
		sys.AddConsumer(s.workingSet)
	}
	if s.wantPatterns {
		s.patterns = iumi.NewPatternCensus()
		sys.AddConsumer(s.patterns)
	}
	if len(s.whatIfConfigs) > 0 {
		s.whatIf = iumi.NewWhatIf(cfg.WarmupRows, s.whatIfConfigs...)
		sys.AddConsumer(s.whatIf)
	}
	if err := rt.Run(s.maxInstrs); err != nil {
		return nil, fmt.Errorf("umi: %w", err)
	}
	sys.Finish()
	s.report = sys.Report()
	s.metrics = sys.MetricsSnapshot()
	s.history = sys.History()
	s.overhead = sys.Overhead()
	s.hierarchy = h
	s.runtime = rt
	return s.report, nil
}

// Report returns the profiling report (nil before Run).
func (s *Session) Report() *Report { return s.report }

// Metrics returns the final self-observability snapshot of the run: what
// the runtime's introspection cost, from instrumentation and filter
// counts through analysis latency and pipeline queue pressure. The zero
// Snapshot before Run.
func (s *Session) Metrics() MetricsSnapshot { return s.metrics }

// Overhead returns the run's per-stage self-overhead attribution: where
// the introspection cost went, in modelled cycles (deterministic — the
// basis of the overhead/accuracy frontier) and measured wall time. Nil
// before Run.
func (s *Session) Overhead() *OverheadReport { return s.overhead }

// History returns the profile-history snapshot of the run: one
// WindowSummary per analyzer invocation (bounded by WithHistory), with
// delinquent-set churn and phase-change flags. The empty (schema-stamped)
// view before Run.
func (s *Session) History() HistoryView {
	if s.report == nil {
		return (*iumi.History)(nil).View()
	}
	return s.history
}

// EventLog returns the structured event timeline (nil unless the session
// was built WithEventTrace). Safe to snapshot from any goroutine, during
// or after the run.
func (s *Session) EventLog() *EventLog { return s.events }

// Events returns the retained lifecycle events in emission order, with
// Drops() on the log reporting how many older events the ring discarded.
// Nil unless the session was built WithEventTrace.
func (s *Session) Events() []Event { return s.events.Events() }

// HardwareMissRatio returns the ground-truth L2 miss ratio the modelled
// hardware observed (what a performance counter would report).
func (s *Session) HardwareMissRatio() float64 {
	if s.hierarchy == nil {
		return 0
	}
	return s.hierarchy.L2Stats.MissRatio()
}

// HardwareL2Misses returns the ground-truth L2 miss count.
func (s *Session) HardwareL2Misses() uint64 {
	if s.hierarchy == nil {
		return 0
	}
	return s.hierarchy.L2Stats.Misses
}

// TotalCycles returns the modelled running time including all runtime
// overhead.
func (s *Session) TotalCycles() uint64 {
	if s.runtime == nil {
		return 0
	}
	return s.runtime.TotalCycles()
}

// GuestInstructions returns retired guest instructions.
func (s *Session) GuestInstructions() uint64 {
	if s.runtime == nil {
		return 0
	}
	return s.runtime.M.Instrs
}

// PrefetchesInserted reports how many software prefetches the optimizer
// injected (0 unless WithSoftwarePrefetch).
func (s *Session) PrefetchesInserted() int {
	if s.optimizer == nil {
		return 0
	}
	return len(s.optimizer.Insertions)
}

// LoadsBypassed reports how many loads were rewritten to bypass the L2
// (0 unless WithCacheBypass).
func (s *Session) LoadsBypassed() int {
	if s.ntOpt == nil {
		return 0
	}
	return len(s.ntOpt.Rewritten)
}
