// Command umid is the UMI profiling daemon: a long-lived service
// multiplexing many concurrent guest profiling sessions over one shared
// analyzer pool. Clients create sessions over HTTP, run registered
// workloads or submitted address-trace streams, and scrape per-session
// reports, history, and a fleet-wide Prometheus exposition.
//
// Usage:
//
//	umid [-http addr] [-max-sessions n] [-prep-workers n]
//	     [-queue-bound n] [-queue-high-water n]
//
// The daemon runs until SIGINT/SIGTERM, then drains gracefully: new work
// is refused with 503, in-flight session runs complete, and the shared
// pool shuts down. Each session's results are byte-identical to the same
// configuration run standalone under umiprof — co-tenancy never perturbs
// a profile.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"umi/internal/introspect"
)

func main() {
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, syscall.SIGINT, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-shutdown
		close(stop)
	}()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop))
}

// run is main's guts with the process edges (args, streams, exit status,
// shutdown signal) injected, so the end-to-end tests drive the real
// daemon path in-process.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("umid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	httpAddr := fs.String("http", "127.0.0.1:0", "address to serve the control plane on")
	maxSessions := fs.Int("max-sessions", introspect.DefaultMaxSessions,
		"concurrent session cap; creates past it are rejected with 429")
	prepWorkers := fs.Int("prep-workers", introspect.DefaultPrepWorkers,
		"shared analyzer preparation pool width")
	queueBound := fs.Int("queue-bound", 0,
		"shared preparation queue capacity (0: library default)")
	queueHighWater := fs.Int("queue-high-water", 0,
		"reject new runs with 429 at this queue depth (0: the queue bound)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: umid [flags]   (sessions are created over HTTP)")
		return 2
	}

	d := introspect.NewDaemon(introspect.DaemonConfig{
		MaxSessions:    *maxSessions,
		PrepWorkers:    *prepWorkers,
		QueueBound:     *queueBound,
		QueueHighWater: *queueHighWater,
	})
	addr, stopServe, err := d.Serve(*httpAddr)
	if err != nil {
		fmt.Fprintf(stderr, "umid: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "umid: control plane at http://%s/ (max %d sessions, %d prep workers)\n",
		addr, *maxSessions, *prepWorkers)

	<-stop
	fmt.Fprintln(stderr, "umid: draining: refusing new work, waiting for in-flight runs")
	d.Shutdown()
	stopServe()
	fmt.Fprintln(stderr, "umid: drained, exiting")
	return 0
}
