package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"umi/internal/introspect"
)

// syncBuffer is an io.Writer safe to read while the daemon goroutine
// writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`http://(127\.0\.0\.1:\d+)/`)

// startDaemon boots the real CLI path in-process and returns the base
// URL, the stderr buffer, the stop channel, and the exit-status channel.
func startDaemon(t *testing.T, args ...string) (string, *syncBuffer, chan struct{}, <-chan int) {
	t.Helper()
	stderr := &syncBuffer{}
	stop := make(chan struct{})
	exit := make(chan int, 1)
	go func() { exit <- run(args, io.Discard, stderr, stop) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(stderr.String()); m != nil {
			return "http://" + m[1], stderr, stop, exit
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func doReq(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// traceBody builds a session-config JSON body for a deterministic strided
// trace stream.
func traceBody(t *testing.T, n int, stride uint64, reps, workers int, maxInstrs uint64) []byte {
	t.Helper()
	cfg := introspect.SessionConfig{
		Trace:     make([]uint64, n),
		Reps:      reps,
		Workers:   workers,
		MaxInstrs: maxInstrs,
	}
	for i := range cfg.Trace {
		cfg.Trace[i] = 0x2000_0000 + uint64(i)*stride
	}
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func createSession(t *testing.T, base string, body []byte) string {
	t.Helper()
	code, data := doReq(t, http.MethodPost, base+"/sessions", body)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d, body %s", code, data)
	}
	var inf struct{ ID string }
	if err := json.Unmarshal(data, &inf); err != nil {
		t.Fatal(err)
	}
	return inf.ID
}

// TestDaemonE2E drives the full session lifecycle over real HTTP: create
// → run → scrape report/history/metrics/prometheus → fleet views →
// delete, checking the run output is byte-identical to the same config
// run standalone.
func TestDaemonE2E(t *testing.T) {
	base, _, stop, exit := startDaemon(t, "-max-sessions", "8", "-prep-workers", "2")
	defer func() {
		close(stop)
		select {
		case code := <-exit:
			if code != 0 {
				t.Errorf("daemon exit status %d, want 0", code)
			}
		case <-time.After(30 * time.Second):
			t.Error("daemon never exited after stop")
		}
	}()

	// Index names the surface.
	if code, body := doReq(t, http.MethodGet, base+"/", nil); code != 200 || !strings.Contains(string(body), "umid") {
		t.Fatalf("index: status %d, body %.100s", code, body)
	}

	body := traceBody(t, 256, 192, 64, 2, 1_000_000)
	id := createSession(t, base, body)

	code, runOut := doReq(t, http.MethodPost, base+"/sessions/"+id+"/run", nil)
	if code != http.StatusOK {
		t.Fatalf("run: status %d, body %.200s", code, runOut)
	}

	// Byte-equivalence against the standalone path (inline workers): the
	// daemon must add exactly nothing to the profile.
	var cfg introspect.SessionConfig
	if err := json.Unmarshal(body, &cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 0
	want, err := introspect.RunStandalone(cfg)
	if err != nil {
		t.Fatalf("standalone baseline: %v", err)
	}
	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON = append(wantJSON, '\n')
	if !bytes.Equal(runOut, wantJSON) {
		t.Errorf("daemon run output differs from standalone baseline (lens %d vs %d)",
			len(runOut), len(wantJSON))
	}

	// Scrapes: report (same bytes), history, metrics, prometheus.
	if code, rep := doReq(t, http.MethodGet, base+"/sessions/"+id+"/report", nil); code != 200 || !bytes.Equal(rep, wantJSON) {
		t.Errorf("report: status %d or bytes differ from run output", code)
	}
	if code, hist := doReq(t, http.MethodGet, base+"/sessions/"+id+"/history", nil); code != 200 || !strings.Contains(string(hist), "umi-history/v1") {
		t.Errorf("history: status %d, body %.100s", code, hist)
	}
	if code, _ := doReq(t, http.MethodGet, base+"/sessions/"+id+"/metrics", nil); code != 200 {
		t.Errorf("metrics: status %d", code)
	}
	code, prom := doReq(t, http.MethodGet, base+"/metrics/prom", nil)
	if code != 200 {
		t.Fatalf("prom: status %d", code)
	}
	for _, want := range []string{"# TYPE ", `session="` + id + `"`} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prom exposition missing %q; body %.200s", want, prom)
		}
	}
	for _, p := range []string{"/fleet/delinquent", "/fleet/phases"} {
		if code, out := doReq(t, http.MethodGet, base+p, nil); code != 200 || !strings.Contains(string(out), id) {
			t.Errorf("GET %s: status %d or missing session id; body %.200s", p, code, out)
		}
	}

	if code, _ := doReq(t, http.MethodDelete, base+"/sessions/"+id, nil); code != http.StatusNoContent {
		t.Errorf("delete: status %d, want 204", code)
	}
	if code, _ := doReq(t, http.MethodGet, base+"/sessions/"+id+"/report", nil); code != http.StatusNotFound {
		t.Errorf("report after delete: status %d, want 404", code)
	}
}

// TestDaemonE2EAdmission: creates past -max-sessions are rejected with
// 429 over real HTTP, and a delete frees the slot.
func TestDaemonE2EAdmission(t *testing.T) {
	base, _, stop, exit := startDaemon(t, "-max-sessions", "2")
	defer func() {
		close(stop)
		<-exit
	}()

	body := traceBody(t, 32, 64, 4, 0, 100_000)
	a := createSession(t, base, body)
	createSession(t, base, body)
	if code, msg := doReq(t, http.MethodPost, base+"/sessions", body); code != http.StatusTooManyRequests {
		t.Fatalf("create past limit: status %d (%s), want 429", code, msg)
	}
	doReq(t, http.MethodDelete, base+"/sessions/"+a, nil)
	createSession(t, base, body)
}

// TestDaemonE2EGracefulDrain: a stop signal while a run is in flight
// must refuse new work with 503, let the run finish with 200, and exit 0.
func TestDaemonE2EGracefulDrain(t *testing.T) {
	base, stderr, stop, exit := startDaemon(t, "-max-sessions", "4")

	// A run long enough to still be executing when the signal lands.
	id := createSession(t, base, traceBody(t, 2048, 256, 2048, 2, 40_000_000))
	runDone := make(chan int, 1)
	go func() {
		code, _ := doReq(t, http.MethodPost, base+"/sessions/"+id+"/run", nil)
		runDone <- code
	}()
	// Wait until the run is past creation before signalling.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, out := doReq(t, http.MethodGet, base+"/sessions", nil)
		if code != 200 {
			t.Fatalf("list: status %d", code)
		}
		if strings.Contains(string(out), `"state": "running"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never reached running state; sessions: %s", out)
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(stop)
	// While draining, the listener stays up and refuses new sessions. The
	// drain window closes when the in-flight run finishes, so tolerate the
	// listener going away (that just means the drain completed).
	refused := false
	small := traceBody(t, 32, 64, 4, 0, 100_000)
	for i := 0; i < 200; i++ {
		resp, err := http.Post(base+"/sessions", "application/json", bytes.NewReader(small))
		if err != nil {
			break // listener closed: drain already completed
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			refused = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !refused {
		t.Error("create during drain was never refused with 503")
	}

	if code := <-runDone; code != http.StatusOK {
		t.Errorf("in-flight run finished with status %d, want 200", code)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit status %d, want 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after drain")
	}
	if out := stderr.String(); !strings.Contains(out, "draining") || !strings.Contains(out, "drained") {
		t.Errorf("stderr missing drain lifecycle lines:\n%s", out)
	}
}

func TestDaemonBadArgs(t *testing.T) {
	if code := run([]string{"positional"}, io.Discard, io.Discard, nil); code != 2 {
		t.Errorf("positional arg: exit %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, io.Discard, io.Discard, nil); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}
