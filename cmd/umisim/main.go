// Command umisim is the reproduction's standalone Cachegrind: it executes
// a workload natively while driving every memory reference through a full
// trace-driven two-level cache simulation, then prints whole-program and
// per-instruction miss statistics and the 90%-coverage delinquent load
// set. It is the offline, high-overhead baseline UMI is compared against.
//
// Usage:
//
//	umisim [-machine p4|k7] [-top n] [-coverage 0.9] <workload>
//	umisim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"umi/internal/cachegrind"
	"umi/internal/program"
	"umi/internal/trace"
	"umi/internal/vm"
	"umi/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's guts with the process edges (args, streams, exit status)
// injected, so the end-to-end tests can drive the real CLI path.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("umisim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	machine := fs.String("machine", "p4", "hardware model: p4 or k7")
	top := fs.Int("top", 15, "top missing instructions to print")
	coverage := fs.Float64("coverage", 0.90, "delinquent set miss coverage")
	annotate := fs.Bool("annotate", false, "print the annotated disassembly (cg_annotate style)")
	record := fs.String("record", "", "also write the address trace to this file")
	replay := fs.String("replay", "", "simulate from a recorded trace file instead of running a workload")
	list := fs.Bool("list", false, "list workloads and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Fprintf(stdout, "%-16s %-9s %s\n", w.Name, w.Suite, w.Class)
		}
		return 0
	}
	var sim *cachegrind.Simulator
	if *machine == "k7" {
		sim = cachegrind.NewK7()
	} else {
		sim = cachegrind.NewP4()
	}

	var title string
	var prog *program.Program
	switch {
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintf(stderr, "umisim: %v\n", err)
			return 1
		}
		defer f.Close()
		rd, err := trace.NewReader(f)
		if err != nil {
			fmt.Fprintf(stderr, "umisim: %v\n", err)
			return 1
		}
		n, err := rd.Replay(sim.Ref)
		if err != nil {
			fmt.Fprintf(stderr, "umisim: replay after %d records: %v\n", n, err)
			return 1
		}
		title = fmt.Sprintf("replayed trace %s (%d records)", *replay, n)
	case fs.NArg() == 1:
		w, ok := workloads.ByName(fs.Arg(0))
		if !ok {
			fmt.Fprintf(stderr, "umisim: unknown workload %q\n", fs.Arg(0))
			return 1
		}
		prog = w.Program()
		m := vm.New(prog, nil)
		hooks := []vm.RefHook{sim.Ref}
		var tw *trace.Writer
		if *record != "" {
			f, err := os.Create(*record)
			if err != nil {
				fmt.Fprintf(stderr, "umisim: %v\n", err)
				return 1
			}
			defer f.Close()
			tw, err = trace.NewWriter(f)
			if err != nil {
				fmt.Fprintf(stderr, "umisim: %v\n", err)
				return 1
			}
			hooks = append(hooks, tw.Hook())
		}
		m.RefHook = func(pc, addr uint64, size uint8, write bool) {
			for _, h := range hooks {
				h(pc, addr, size, write)
			}
		}
		if err := m.Run(200_000_000); err != nil {
			fmt.Fprintf(stderr, "umisim: %v\n", err)
			return 1
		}
		if tw != nil {
			if err := tw.Flush(); err != nil {
				fmt.Fprintf(stderr, "umisim: trace: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "recorded %d references to %s\n", tw.Count(), *record)
		}
		title = fmt.Sprintf("%s (%s)", w.Name, w.Suite)
	default:
		fmt.Fprintln(stderr, "usage: umisim [flags] <workload> | umisim -replay trace.umi   (umisim -list to enumerate)")
		return 2
	}

	fmt.Fprintf(stdout, "workload: %s\n", title)
	fmt.Fprintf(stdout, "refs:     %d dynamic memory references, %d static instructions\n",
		sim.Refs, len(sim.Stats()))
	fmt.Fprintf(stdout, "L1:       %d accesses, %d misses (%.3f%%)\n",
		sim.L1Accesses, sim.L1Misses, pct(sim.L1Misses, sim.L1Accesses))
	fmt.Fprintf(stdout, "L2:       %d accesses, %d misses (%.3f%%)\n",
		sim.L2Accesses, sim.L2Misses, pct(sim.L2Misses, sim.L2Accesses))

	stats := make([]*cachegrind.PCStat, 0, len(sim.Stats()))
	for _, st := range sim.Stats() {
		stats = append(stats, st)
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].L2Misses != stats[j].L2Misses {
			return stats[i].L2Misses > stats[j].L2Misses
		}
		return stats[i].PC < stats[j].PC
	})
	fmt.Fprintf(stdout, "\ntop %d instructions by L2 misses:\n", *top)
	n := *top
	if n > len(stats) {
		n = len(stats)
	}
	for _, st := range stats[:n] {
		kind := "load"
		if !st.IsLoad {
			kind = "store"
		}
		fmt.Fprintf(stdout, "  %#08x  %-5s L2 misses=%-9d accesses=%-9d ratio=%.4f\n",
			st.PC, kind, st.L2Misses, st.Accesses, st.MissRatio())
	}

	set := sim.DelinquentSet(*coverage)
	fmt.Fprintf(stdout, "\ndelinquent load set C (%.0f%% coverage): %d loads, actual coverage %.2f%%\n",
		100**coverage, len(set), 100*sim.MissCoverage(set))

	if *annotate && prog != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, sim.Annotate(prog, false))
	}
	return 0
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
