package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// The end-to-end tests drive run() — main minus os.Exit — so they exercise
// the real flag parsing, simulation, and rendering path of the binary.

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestE2EList(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("umisim -list exited %d", code)
	}
	if !strings.Contains(out, "181.mcf") || !strings.Contains(out, "470.lbm") {
		t.Errorf("-list output incomplete:\n%s", out)
	}
}

func TestE2EBadInvocations(t *testing.T) {
	if code, _, errs := runCLI(t); code != 2 || !strings.Contains(errs, "usage:") {
		t.Errorf("no args: exit %d, stderr %q; want 2 with usage", code, errs)
	}
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, errs := runCLI(t, "no-such-workload"); code != 1 ||
		!strings.Contains(errs, "unknown workload") {
		t.Errorf("unknown workload: exit %d, stderr %q; want 1 with diagnosis", code, errs)
	}
	if code, _, _ := runCLI(t, "-replay", filepath.Join(t.TempDir(), "absent.umi")); code != 1 {
		t.Errorf("missing replay file: exit %d, want 1", code)
	}
}

func TestE2EReportShape(t *testing.T) {
	code, out, errs := runCLI(t, "-top", "5", "470.lbm")
	if code != 0 {
		t.Fatalf("umisim 470.lbm exited %d, stderr %q", code, errs)
	}
	for _, want := range []string{
		"workload: 470.lbm",
		"L1:",
		"L2:",
		"top 5 instructions by L2 misses:",
		"delinquent load set C (90% coverage):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\nfull output:\n%s", want, out)
		}
	}
}

func TestE2EAnnotate(t *testing.T) {
	code, plain, _ := runCLI(t, "470.lbm")
	if code != 0 {
		t.Fatal("plain run failed")
	}
	code, annotated, _ := runCLI(t, "-annotate", "470.lbm")
	if code != 0 {
		t.Fatal("-annotate run failed")
	}
	if len(annotated) <= len(plain) {
		t.Error("-annotate added no disassembly")
	}
	if !strings.HasPrefix(annotated, plain) {
		t.Error("-annotate must extend the plain report, not alter it")
	}
}

// TestE2ERecordReplay closes the trace loop: simulating from a recorded
// trace must reach exactly the statistics of the live run that wrote it.
func TestE2ERecordReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lbm.umi")
	code, live, errs := runCLI(t, "-record", path, "470.lbm")
	if code != 0 {
		t.Fatalf("record run exited %d, stderr %q", code, errs)
	}
	if !strings.Contains(errs, "recorded ") {
		t.Errorf("record run did not report the trace write: %q", errs)
	}
	code, replayed, errs := runCLI(t, "-replay", path)
	if code != 0 {
		t.Fatalf("replay run exited %d, stderr %q", code, errs)
	}
	// Identical statistics, different headline: compare everything after
	// the workload line.
	liveBody := live[strings.Index(live, "\n")+1:]
	replayBody := replayed[strings.Index(replayed, "\n")+1:]
	if liveBody != replayBody {
		t.Errorf("replay diverged from the live run:\n--- live ---\n%s--- replay ---\n%s",
			liveBody, replayBody)
	}
}
