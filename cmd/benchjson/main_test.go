package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: umi
cpu: Example CPU @ 2.10GHz
BenchmarkCacheAccess    	59188197	        20.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheAccess    	66214640	        22.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkAnalyzeProfile 	    3380	     69448 ns/op	        16.95 ns/ref	      21 B/op	       0 allocs/op
PASS
ok  	umi	7.918s
`

func TestParseAggregatesAndSorts(t *testing.T) {
	f, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != schemaName {
		t.Errorf("schema = %q", f.Schema)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(f.Benchmarks))
	}
	if f.Benchmarks[0].Name != "BenchmarkAnalyzeProfile" || f.Benchmarks[1].Name != "BenchmarkCacheAccess" {
		t.Errorf("not sorted by name: %v, %v", f.Benchmarks[0].Name, f.Benchmarks[1].Name)
	}
	ca := f.Benchmarks[1]
	if ca.Runs != 2 || ca.Iterations != 59188197+66214640 {
		t.Errorf("CacheAccess runs=%d iters=%d", ca.Runs, ca.Iterations)
	}
	if got := ca.Metrics["ns/op"]; got != 21.0 {
		t.Errorf("mean ns/op = %v, want 21.0", got)
	}
	ap := f.Benchmarks[0]
	if unit, v, ok := headline(ap); !ok || unit != "ns/ref" || v != 16.95 {
		t.Errorf("headline = %v %v %v, want ns/ref 16.95", unit, v, ok)
	}
	if unit, _, _ := headline(ca); unit != "ns/op" {
		t.Errorf("headline without ns/ref = %v, want ns/op", unit)
	}
}

func TestCompareWarnsPastThreshold(t *testing.T) {
	baseline, _ := parse(strings.NewReader(
		"BenchmarkCacheAccess-8 100 20.0 ns/op\nBenchmarkGone-8 100 5.0 ns/op\n"))
	cur, _ := parse(strings.NewReader(
		"BenchmarkCacheAccess-8 100 30.0 ns/op\nBenchmarkNew-8 100 1.0 ns/op\n"))
	var sb strings.Builder
	if n := compare(&sb, baseline, cur, 15); n != 1 {
		t.Errorf("regressions = %d, want 1 (50%% past a 15%% threshold)", n)
	}
	out := sb.String()
	for _, want := range []string{"::warning::BenchmarkCacheAccess", "+50.0%",
		"BenchmarkNew", "no baseline", "BenchmarkGone", "baseline only"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if n := compare(&sb, baseline, cur, 60); n != 0 {
		t.Errorf("regressions = %d at a 60%% threshold, want 0", n)
	}
}

func TestRunCaptureAndCompare(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_umi.json")
	var out, errb strings.Builder
	if code := run([]string{"-out", path}, strings.NewReader(sampleOutput), &out, &errb); code != 0 {
		t.Fatalf("capture exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("emitted JSON invalid: %v", err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("round-trip lost benchmarks: %d", len(f.Benchmarks))
	}

	// Compare the same output against itself: zero regressions, exit 0.
	out.Reset()
	if code := run([]string{"-compare", path}, strings.NewReader(sampleOutput), &out, &errb); code != 0 {
		t.Fatalf("compare exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "0 benchmark(s) past") {
		t.Errorf("self-compare should report no regressions:\n%s", out.String())
	}

	// Empty input is an error.
	if code := run(nil, strings.NewReader("PASS\n"), &out, &errb); code != 1 {
		t.Errorf("empty input exit = %d, want 1", code)
	}
}

// TestRunAppendAndTrend drives the history mode end to end: three appended
// runs with a slowly drifting headline metric, -history-max trimming, and
// a trend report that flags cumulative drift the single-step compare
// would pass.
func TestRunAppendAndTrend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_history.json")
	bench := func(ns string) string {
		return "BenchmarkCacheAccess-8 100 " + ns + " ns/op\n"
	}
	var out, errb strings.Builder

	// First append starts from a missing file.
	if code := run([]string{"-append", path}, strings.NewReader(bench("20.0")), &out, &errb); code != 0 {
		t.Fatalf("append 1 exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "appended run 1 to") {
		t.Errorf("append note missing:\n%s", out.String())
	}

	// Two more runs, each +10% — under a 15% single-step threshold but
	// +21% cumulative.
	for _, ns := range []string{"22.0", "24.2"} {
		out.Reset()
		if code := run([]string{"-append", path, "-trend", path}, strings.NewReader(bench(ns)), &out, &errb); code != 0 {
			t.Fatalf("append exit %d: %s", code, errb.String())
		}
	}
	hist, err := loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history holds %d runs, want 3", len(hist))
	}
	if !strings.Contains(out.String(), "::warning::BenchmarkCacheAccess drifted 21.0%") {
		t.Errorf("cumulative drift not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 benchmark(s) past the 15% drift threshold") {
		t.Errorf("trend summary missing:\n%s", out.String())
	}

	// Pure trend mode reads only the file — no stdin run required.
	out.Reset()
	if code := run([]string{"-trend", path}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("pure trend exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "trend across 3 runs") {
		t.Errorf("pure trend report missing:\n%s", out.String())
	}

	// -history-max trims to the most recent runs.
	out.Reset()
	if code := run([]string{"-append", path, "-history-max", "2"}, strings.NewReader(bench("24.2")), &out, &errb); code != 0 {
		t.Fatalf("trimmed append exit %d: %s", code, errb.String())
	}
	hist, err = loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Errorf("trimmed history holds %d runs, want 2", len(hist))
	}

	// A corrupt history is an error, not silent data loss.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"schema":"wrong/v0"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-append", bad}, strings.NewReader(bench("20.0")), &out, &errb); code != 1 {
		t.Errorf("corrupt history exit = %d, want 1", code)
	}

	// Per-metric series: a steady headline must not mask B/op drift or
	// allocs/op leaving zero; both get their own warning lines, and the
	// benchmark counts once in the summary.
	multi := filepath.Join(dir, "multi.json")
	oldRun := "BenchmarkAnalyzeProfile-8 100 70000 ns/op 17.00 ns/ref 100 B/op 0 allocs/op\n"
	newRun := "BenchmarkAnalyzeProfile-8 100 70000 ns/op 17.00 ns/ref 150 B/op 2 allocs/op\n"
	for _, r := range []string{oldRun, newRun} {
		out.Reset()
		if code := run([]string{"-append", multi}, strings.NewReader(r), &out, &errb); code != 0 {
			t.Fatalf("multi-metric append exit %d: %s", code, errb.String())
		}
	}
	out.Reset()
	if code := run([]string{"-trend", multi}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("multi-metric trend exit %d: %s", code, errb.String())
	}
	for _, want := range []string{
		"::warning::BenchmarkAnalyzeProfile B/op drifted 50.0% across 2 runs",
		"::warning::BenchmarkAnalyzeProfile allocs/op grew from zero across 2 runs (0 -> 2.00)",
		"1 benchmark(s) past the 15% drift threshold",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("per-metric trend output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "::warning::BenchmarkAnalyzeProfile drifted") {
		t.Errorf("steady headline must not warn:\n%s", out.String())
	}

	// Short history: trend declines politely.
	single := filepath.Join(dir, "single.json")
	out.Reset()
	if code := run([]string{"-append", single}, strings.NewReader(bench("20.0")), &out, &errb); code != 0 {
		t.Fatal("single append failed")
	}
	out.Reset()
	if code := run([]string{"-trend", single}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatal("single trend failed")
	}
	if !strings.Contains(out.String(), "need 2 for a trend") {
		t.Errorf("short-history note missing:\n%s", out.String())
	}
}
