// Command benchjson converts `go test -bench` output into the
// machine-readable BENCH_umi.json perf trajectory, and diffs a fresh run
// against a committed baseline.
//
// Capture mode (the `make bench-json` target):
//
//	go test -run '^$' -bench ... -benchmem -count 3 . | benchjson -out BENCH_umi.json
//
// Compare mode (the CI regression step; warn-only, since CI machines vary):
//
//	go test -run '^$' -bench ... -benchmem . | benchjson -compare BENCH_umi.json -warn-pct 15
//
// History mode (the CI trend step): -append accumulates runs into a
// history file — a JSON list of umi-bench/v1 runs, oldest first — and
// -trend diffs the oldest retained run against the newest — the headline
// metric plus a series for every other reported metric (B/op, allocs/op) —
// catching the slow multi-PR drift the single-step compare misses:
//
//	go test -run '^$' -bench ... -benchmem . | benchjson -append BENCH_history.json -trend BENCH_history.json
//
// Repeated -count runs of one benchmark are averaged into a single entry,
// and entries are sorted by name, so the JSON is stable for a fixed set of
// measurements.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	Name       string             `json:"name"`
	Runs       int                `json:"runs"`
	Iterations int64              `json:"iterations"` // total across runs
	Metrics    map[string]float64 `json:"metrics"`    // unit -> mean value
}

// File is the BENCH_umi.json schema: a flat, sorted list of benchmark
// results. Environment identification (Go version, CPU) stays out so the
// committed baseline does not churn with toolchain bumps; the `go test`
// header lines carry that context in CI logs.
type File struct {
	Schema     string   `json:"schema"`
	Benchmarks []Result `json:"benchmarks"`
}

const schemaName = "umi-bench/v1"

// benchLine matches one result line: name (with optional -GOMAXPROCS
// suffix), iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// parse reads `go test -bench` output and aggregates per-benchmark means.
func parse(r io.Reader) (*File, error) {
	type acc struct {
		runs  int
		iters int64
		sums  map[string]float64
		n     map[string]int
	}
	byName := map[string]*acc{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		a := byName[m[1]]
		if a == nil {
			a = &acc{sums: map[string]float64{}, n: map[string]int{}}
			byName[m[1]] = a
		}
		a.runs++
		a.iters += iters
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q for %q", m[1], fields[i], fields[i+1])
			}
			a.sums[fields[i+1]] += v
			a.n[fields[i+1]]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	f := &File{Schema: schemaName}
	for name, a := range byName {
		res := Result{Name: name, Runs: a.runs, Iterations: a.iters,
			Metrics: make(map[string]float64, len(a.sums))}
		for unit, sum := range a.sums {
			res.Metrics[unit] = sum / float64(a.n[unit])
		}
		f.Benchmarks = append(f.Benchmarks, res)
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool { return f.Benchmarks[i].Name < f.Benchmarks[j].Name })
	return f, nil
}

// headline picks the metric a regression check compares: per-reference cost
// when the benchmark reports it, per-op wall time otherwise.
func headline(r Result) (string, float64, bool) {
	if v, ok := r.Metrics["ns/ref"]; ok {
		return "ns/ref", v, true
	}
	if v, ok := r.Metrics["ns/op"]; ok {
		return "ns/op", v, true
	}
	return "", 0, false
}

// compare diffs cur against the baseline and writes a report. It returns
// the number of benchmarks whose headline metric regressed past warnPct.
func compare(w io.Writer, baseline, cur *File, warnPct float64) int {
	base := map[string]Result{}
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	regressions := 0
	for _, r := range cur.Benchmarks {
		unit, now, ok := headline(r)
		if !ok {
			continue
		}
		b, inBase := base[r.Name]
		if !inBase {
			fmt.Fprintf(w, "%-28s %10.2f %s (no baseline)\n", r.Name, now, unit)
			continue
		}
		old, okBase := b.Metrics[unit]
		if !okBase || old == 0 {
			fmt.Fprintf(w, "%-28s %10.2f %s (baseline lacks %s)\n", r.Name, now, unit, unit)
			continue
		}
		pct := 100 * (now - old) / old
		fmt.Fprintf(w, "%-28s %10.2f -> %10.2f %s  %+6.1f%%\n", r.Name, old, now, unit, pct)
		if pct > warnPct {
			regressions++
			// GitHub Actions annotation; inert noise elsewhere.
			fmt.Fprintf(w, "::warning::%s regressed %.1f%% (%s %.2f -> %.2f, threshold %.0f%%)\n",
				r.Name, pct, unit, old, now, warnPct)
		}
	}
	for name := range base {
		found := false
		for _, r := range cur.Benchmarks {
			if r.Name == name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "%-28s missing from this run (baseline only)\n", name)
		}
	}
	return regressions
}

// loadHistory reads a history file: a JSON list of schema-stamped runs,
// oldest first. A missing file is an empty history, not an error (the
// first CI run after a cache miss starts from scratch).
func loadHistory(path string) ([]File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var hist []File
	if err := json.Unmarshal(data, &hist); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	for i, f := range hist {
		if f.Schema != schemaName {
			return nil, fmt.Errorf("%s: run %d has schema %q, want %q", path, i, f.Schema, schemaName)
		}
	}
	return hist, nil
}

// trend diffs the oldest retained run against the newest and writes a
// report: the headline metric first, then a series line for every other
// metric both runs report (B/op, allocs/op, ns/op under an ns/ref
// headline), so allocation creep is caught alongside time drift. It
// returns the number of benchmarks with any metric drifted past warnPct
// cumulatively — the regression a sequence of under-threshold single-step
// changes accumulates.
func trend(w io.Writer, hist []File, warnPct float64) int {
	if len(hist) < 2 {
		fmt.Fprintf(w, "history holds %d run(s); need 2 for a trend\n", len(hist))
		return 0
	}
	oldest, newest := hist[0], hist[len(hist)-1]
	base := map[string]Result{}
	for _, r := range oldest.Benchmarks {
		base[r.Name] = r
	}
	drifts := 0
	fmt.Fprintf(w, "trend across %d runs (oldest retained -> newest):\n", len(hist))
	for _, r := range newest.Benchmarks {
		unit, now, ok := headline(r)
		if !ok {
			continue
		}
		b, inBase := base[r.Name]
		if !inBase {
			fmt.Fprintf(w, "%-28s %10.2f %s (not in oldest run)\n", r.Name, now, unit)
			continue
		}
		old, okBase := b.Metrics[unit]
		if !okBase || old == 0 {
			fmt.Fprintf(w, "%-28s %10.2f %s (oldest run lacks %s)\n", r.Name, now, unit, unit)
			continue
		}
		drifted := false
		pct := 100 * (now - old) / old
		fmt.Fprintf(w, "%-28s %10.2f -> %10.2f %s  %+6.1f%%\n", r.Name, old, now, unit, pct)
		if pct > warnPct {
			drifted = true
			fmt.Fprintf(w, "::warning::%s drifted %.1f%% across %d runs (%s %.2f -> %.2f, threshold %.0f%%)\n",
				r.Name, pct, len(hist), unit, old, now, warnPct)
		}
		for _, u := range sortedUnits(r.Metrics) {
			if u == unit {
				continue
			}
			nv := r.Metrics[u]
			ov, inOld := b.Metrics[u]
			if !inOld {
				continue
			}
			switch {
			case ov == 0 && nv == 0:
				fmt.Fprintf(w, "  %-26s %10.2f -> %10.2f %s\n", "", ov, nv, u)
			case ov == 0:
				// A zero baseline has no percentage; any growth is drift
				// (allocs/op leaving zero is exactly the regression the
				// zero-alloc tests guard).
				drifted = true
				fmt.Fprintf(w, "  %-26s %10.2f -> %10.2f %s\n", "", ov, nv, u)
				fmt.Fprintf(w, "::warning::%s %s grew from zero across %d runs (0 -> %.2f)\n",
					r.Name, u, len(hist), nv)
			default:
				mpct := 100 * (nv - ov) / ov
				fmt.Fprintf(w, "  %-26s %10.2f -> %10.2f %s  %+6.1f%%\n", "", ov, nv, u, mpct)
				if mpct > warnPct {
					drifted = true
					fmt.Fprintf(w, "::warning::%s %s drifted %.1f%% across %d runs (%.2f -> %.2f, threshold %.0f%%)\n",
						r.Name, u, mpct, len(hist), ov, nv, warnPct)
				}
			}
		}
		if drifted {
			drifts++
		}
	}
	return drifts
}

// sortedUnits returns the metric units in stable order, so series lines
// and warnings do not reshuffle between runs.
func sortedUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

// run is the testable entry point: parses flags against args, reads bench
// output from stdin, and writes to stdout/stderr. Returns the process exit
// code (compare mode is warn-only: regressions annotate, they do not fail).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write aggregated benchmark JSON to this file")
	baselinePath := fs.String("compare", "", "diff stdin's run against this baseline JSON")
	warnPct := fs.Float64("warn-pct", 15, "warn when a headline metric regresses past this percentage")
	appendPath := fs.String("append", "", "append this run to a history file (JSON list of runs, oldest first)")
	trendPath := fs.String("trend", "", "report cumulative oldest-to-newest drift across this history file")
	historyMax := fs.Int("history-max", 50, "most-recent runs to retain when appending (0: unbounded)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *trendPath != "" && *appendPath == "" {
		// Pure trend mode reads only the history file, no stdin run.
		hist, err := loadHistory(*trendPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		n := trend(stdout, hist, *warnPct)
		fmt.Fprintf(stdout, "%d benchmark(s) past the %.0f%% drift threshold\n", n, *warnPct)
		return 0
	}
	cur, err := parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark result lines on stdin")
		return 1
	}
	if *appendPath != "" {
		hist, err := loadHistory(*appendPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		hist = append(hist, *cur)
		if *historyMax > 0 && len(hist) > *historyMax {
			hist = hist[len(hist)-*historyMax:]
		}
		data, err := json.MarshalIndent(hist, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*appendPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "appended run %d to %s (%d benchmark(s))\n",
			len(hist), *appendPath, len(cur.Benchmarks))
		if *trendPath != "" {
			n := trend(stdout, hist, *warnPct)
			fmt.Fprintf(stdout, "%d benchmark(s) past the %.0f%% drift threshold\n", n, *warnPct)
		}
		return 0
	}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		var baseline File
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(stderr, "benchjson: %s: %v\n", *baselinePath, err)
			return 1
		}
		n := compare(stdout, &baseline, cur, *warnPct)
		fmt.Fprintf(stdout, "%d benchmark(s) past the %.0f%% warn threshold\n", n, *warnPct)
		return 0
	}
	data, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %d benchmark(s) to %s\n", len(cur.Benchmarks), *out)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
