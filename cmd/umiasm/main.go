// Command umiasm assembles, disassembles, and executes guest assembly.
//
//	umiasm run prog.s            execute natively, print final registers
//	umiasm umi prog.s            execute under UMI, print the profile
//	umiasm fmt prog.s            parse and reprint (canonical form)
//	umiasm dump <workload>       print a bundled workload as assembly
//
// The syntax is documented in internal/asm.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"umi/internal/asm"
	"umi/internal/cache"
	"umi/internal/isa"
	"umi/internal/program"
	"umi/internal/rio"
	"umi/internal/umi"
	"umi/internal/vm"
	"umi/internal/workloads"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: umiasm run|umi|fmt <file.s>  |  umiasm dump <workload>")
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	cmd, arg := flag.Arg(0), flag.Arg(1)
	if err := dispatch(cmd, arg); err != nil {
		fmt.Fprintf(os.Stderr, "umiasm: %v\n", err)
		os.Exit(1)
	}
}

func dispatch(cmd, arg string) error {
	switch cmd {
	case "dump":
		w, ok := workloads.ByName(arg)
		if !ok {
			return fmt.Errorf("unknown workload %q", arg)
		}
		fmt.Print(asm.Format(w.Program()))
		return nil
	case "run", "umi", "fmt":
		src, err := os.ReadFile(arg)
		if err != nil {
			return err
		}
		p, err := asm.Parse(arg, string(src))
		if err != nil {
			return err
		}
		switch cmd {
		case "fmt":
			fmt.Print(asm.Format(p))
			return nil
		case "run":
			return runNative(p)
		default:
			return runUMI(p)
		}
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func runNative(p *program.Program) error {
	h := cache.NewP4(false)
	m := vm.New(p, h)
	if err := m.Run(200_000_000); err != nil {
		return err
	}
	fmt.Printf("halted after %d instructions, %d cycles\n", m.Instrs, m.Cycles)
	fmt.Printf("L2: %v\n", &h.L2Stats)
	for r := isa.R0; r < isa.NumRegs; r++ {
		if m.Regs[r] != 0 && r != isa.SP && r != isa.BP {
			fmt.Printf("  %-3v = %d (%#x)\n", r, m.Regs[r], m.Regs[r])
		}
	}
	return nil
}

func runUMI(p *program.Program) error {
	h := cache.NewP4(false)
	m := vm.New(p, h)
	rt := rio.NewRuntime(m)
	cfg := umi.DefaultConfig(cache.P4L2)
	cfg.SamplePeriod = 2000
	cfg.FrequencyThreshold = 8
	cfg.ReinstrumentGap = 100_000
	sys := umi.Attach(rt, cfg)
	if err := rt.Run(200_000_000); err != nil {
		return err
	}
	sys.Finish()
	rep := sys.Report()
	fmt.Printf("%v\n", rep)
	fmt.Printf("hardware L2 miss ratio %.4f; UMI simulated %.4f\n",
		h.L2Stats.MissRatio(), rep.SimMissRatio)
	var pcs []uint64
	for pc := range rep.Delinquent {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		line := fmt.Sprintf("delinquent load at %#x", pc)
		if i, ok := p.IndexOf(pc); ok {
			line += fmt.Sprintf(": %v", p.Instrs[i])
		}
		if si, ok := rep.Strides[pc]; ok {
			line += fmt.Sprintf(" (stride %+d)", si.Stride)
		}
		fmt.Println(line)
	}
	return nil
}
