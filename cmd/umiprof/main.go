// Command umiprof runs one workload under the UMI runtime and prints the
// online profiling results: the delinquent load set, discovered strides,
// per-operation mini-simulation statistics, and overhead accounting — the
// view a runtime optimizer would act on.
//
// Usage:
//
//	umiprof [-machine p4|k7] [-hwpf] [-swpf] [-no-sampling] [-workers n] [-top n] <workload>
//	umiprof -list
package main

import (
	"flag"
	"fmt"
	"os"

	"umi/internal/harness"
	"umi/internal/prefetch"
	"umi/internal/rio"
	"umi/internal/umi"
	"umi/internal/vm"
	"umi/internal/workloads"
)

func main() {
	machine := flag.String("machine", "p4", "hardware model: p4 or k7")
	hwpf := flag.Bool("hwpf", false, "enable hardware prefetchers (P4 only)")
	swpf := flag.Bool("swpf", false, "enable the online software prefetcher")
	noSampling := flag.Bool("no-sampling", false, "instrument every trace at creation")
	workers := flag.Int("workers", 1,
		"analyzer pipeline width; at >= 2 profiles are analyzed off the guest thread (same results)")
	top := flag.Int("top", 10, "top missing operations to print")
	ws := flag.Bool("ws", false, "report working-set and reuse-distance characterization")
	patterns := flag.Bool("patterns", false, "classify reference patterns per operation")
	whatIf := flag.Bool("whatif", false, "mini-simulate alternative cache sizes over the same profiles")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-16s %-9s %s\n", w.Name, w.Suite, w.Class)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: umiprof [flags] <workload>   (umiprof -list to enumerate)")
		os.Exit(2)
	}
	w, ok := workloads.ByName(flag.Arg(0))
	if !ok {
		fmt.Fprintf(os.Stderr, "umiprof: unknown workload %q\n", flag.Arg(0))
		os.Exit(1)
	}

	var plat = harness.P4
	if *machine == "k7" {
		plat = harness.K7
	}
	cfg := harness.UMIParams(plat)
	cfg.UseSampling = !*noSampling
	cfg.AnalyzerWorkers = *workers

	h := plat.Hierarchy(*hwpf)
	m := vm.New(w.Program(), h)
	rt := rio.NewRuntime(m)
	sys := umi.Attach(rt, cfg)
	var opt *prefetch.Optimizer
	if *swpf {
		opt = prefetch.NewOptimizer(prefetch.DefaultConfig)
		sys.OnAnalyzed = opt.Hook()
	}
	var wset *umi.WorkingSet
	if *ws {
		wset = umi.NewWorkingSet(plat.L2.LineSize)
		sys.AddConsumer(wset)
	}
	var census *umi.PatternCensus
	if *patterns {
		census = umi.NewPatternCensus()
		sys.AddConsumer(census)
	}
	var explorer *umi.WhatIf
	if *whatIf {
		quarter, half, double := plat.L2, plat.L2, plat.L2
		quarter.Size /= 4
		quarter.Name = "L2/4"
		half.Size /= 2
		half.Name = "L2/2"
		double.Size *= 2
		double.Name = "L2x2"
		explorer = umi.NewWhatIf(cfg.WarmupRows, quarter, half, plat.L2, double)
		sys.AddConsumer(explorer)
	}
	if err := rt.Run(harness.MaxInstrs); err != nil {
		fmt.Fprintf(os.Stderr, "umiprof: %v\n", err)
		os.Exit(1)
	}
	sys.Finish()
	rep := sys.Report()

	fmt.Printf("workload:   %s (%s; %s)\n", w.Name, w.Suite, w.Class)
	fmt.Printf("platform:   %s (hw prefetch %v)\n", plat.Name, *hwpf && plat.HasHWPrefetch)
	fmt.Printf("instrs:     %d guest, %d cycles (total %d with runtime overhead)\n",
		m.Instrs, m.Cycles, rt.TotalCycles())
	fmt.Printf("hardware:   L2 %s\n", &h.L2Stats)
	fmt.Printf("umi:        %s\n", rep)
	fmt.Printf("traces:     %d seen, %d instrument events, %d blocks / %d traces built\n",
		rep.TracesSeen, rep.InstrumentEvents, rt.BlocksBuilt, rt.TracesBuilt)
	fmt.Printf("analysis:   %d invocations, %d refs simulated, %d cache flushes\n",
		rep.AnalyzerInvocations, rep.SimulatedRefs, rep.Flushes)
	fmt.Printf("sim ratio:  %.4f (hardware %.4f)\n", rep.SimMissRatio, h.L2Stats.MissRatio())

	fmt.Printf("\ndelinquent loads (|P| = %d):\n", len(rep.Delinquent))
	an := sys.Analyzer()
	for _, st := range an.TopMissers(*top) {
		if !rep.Delinquent[st.PC] {
			continue
		}
		line := fmt.Sprintf("  %#08x  miss ratio %.3f (%d/%d)", st.PC, st.MissRatio(), st.Misses, st.Accesses)
		if si, ok := rep.Strides[st.PC]; ok {
			line += fmt.Sprintf("  stride %+d bytes (%.0f%% confident)", si.Stride, 100*si.Confidence)
		}
		fmt.Println(line)
	}

	fmt.Printf("\ntop %d simulated missers:\n", *top)
	for _, st := range an.TopMissers(*top) {
		kind := "load"
		if !st.IsLoad {
			kind = "store"
		}
		fmt.Printf("  %#08x  %-5s misses=%-8d accesses=%-8d ratio=%.3f\n",
			st.PC, kind, st.Misses, st.Accesses, st.MissRatio())
	}

	if opt != nil {
		fmt.Printf("\nsoftware prefetches inserted (%d):\n", len(opt.Insertions))
		for _, ins := range opt.Insertions {
			fmt.Printf("  %v\n", ins)
		}
	}

	if wset != nil {
		fmt.Printf("\nworking set (profiled bursts): %v\n", wset)
	}
	if census != nil {
		fmt.Printf("\n%s\n", census.Summary())
	}
	if explorer != nil {
		fmt.Println("\nwhat-if cache geometries over the same profiles:")
		for _, r := range explorer.Results() {
			fmt.Printf("  %-6s %6dKB  sim miss ratio %.4f (%d/%d)\n",
				r.Config.Name, r.Config.Size/1024, r.MissRatio, r.Misses, r.Accesses)
		}
	}
}
