// Command umiprof runs one workload under the UMI runtime and prints the
// online profiling results: the delinquent load set, discovered strides,
// per-operation mini-simulation statistics, and overhead accounting — the
// view a runtime optimizer would act on.
//
// Usage:
//
//	umiprof [-machine p4|k7] [-hwpf] [-swpf] [-no-sampling] [-workers n] [-top n]
//	        [-metrics] [-metrics-json file] [-overhead] [-trace-out file]
//	        [-history] [-history-out file] [-emit file] [-emit-format 1|2]
//	        [-emit-live host:port] [-live-window n]
//	        [-http addr] [-http-linger d] <workload>
//	umiprof -ingest file [-workers n]             replay a recorded stream locally
//	umiprof -ingest file -ingest-addr host:port   ship it to a umid daemon
//	umiprof -transcode file -o file [-emit-format 1|2]   re-encode a recording
//	umiprof -list
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"umi/internal/harness"
	"umi/internal/introspect"
	"umi/internal/prefetch"
	"umi/internal/rio"
	"umi/internal/tracelog"
	"umi/internal/umi"
	"umi/internal/vm"
	"umi/internal/wire"
	"umi/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's guts with the process edges (args, streams, exit status)
// injected, so the end-to-end tests can drive the real CLI path.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("umiprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	machine := fs.String("machine", "p4", "hardware model: p4 or k7")
	hwpf := fs.Bool("hwpf", false, "enable hardware prefetchers (P4 only)")
	swpf := fs.Bool("swpf", false, "enable the online software prefetcher")
	noSampling := fs.Bool("no-sampling", false, "instrument every trace at creation")
	workers := fs.Int("workers", 1,
		"analyzer pipeline width; at >= 2 profiles are analyzed off the guest thread (same results)")
	top := fs.Int("top", 10, "top missing operations to print")
	ws := fs.Bool("ws", false, "report working-set and reuse-distance characterization")
	patterns := fs.Bool("patterns", false, "classify reference patterns per operation")
	whatIf := fs.Bool("whatif", false, "mini-simulate alternative cache sizes over the same profiles")
	showMetrics := fs.Bool("metrics", false, "append the runtime's self-overhead metrics snapshot")
	showOverhead := fs.Bool("overhead", false,
		"append the per-stage self-overhead attribution (modelled cycles + measured wall)")
	metricsJSON := fs.String("metrics-json", "", "write the metrics snapshot as JSON to this file")
	traceOut := fs.String("trace-out", "",
		"write the run's event timeline as Chrome trace-event JSON to this file (open in Perfetto)")
	showHistory := fs.Bool("history", false,
		"append the per-invocation phase history (window miss ratios, delinquent-set churn)")
	historyOut := fs.String("history-out", "",
		"write the profile-history snapshot as JSON to this file")
	httpAddr := fs.String("http", "",
		"serve live introspection (/metrics, /events, /debug/pprof) on this address during the run")
	httpLinger := fs.Duration("http-linger", 0,
		"keep the -http server up this long after the report prints (0: stop immediately)")
	emitOut := fs.String("emit", "",
		"record the run's umi-profile telemetry stream to this file (replayable via -ingest)")
	emitFormat := fs.Int("emit-format", 2,
		"wire format version written by -emit, -emit-live, and -transcode: 1 or 2 (compressed)")
	emitLive := fs.String("emit-live", "",
		"stream telemetry live to a umid daemon at this address while the guest runs; appends the daemon's RunResult JSON")
	liveWindow := fs.Int("live-window", 64,
		"with -emit-live: flow-control window (in-flight frames before the producer backs off)")
	ingestIn := fs.String("ingest", "",
		"replay a recorded umi-profile stream instead of running a workload; prints the RunResult JSON")
	ingestAddr := fs.String("ingest-addr", "",
		"with -ingest: POST the stream to a umid daemon at this address instead of replaying locally")
	transcodeIn := fs.String("transcode", "",
		"re-encode a recorded stream to -emit-format and write it to -o; replay reports stay byte-identical")
	transcodeOut := fs.String("o", "", "output file for -transcode")
	list := fs.Bool("list", false, "list workloads and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *emitFormat != 1 && *emitFormat != 2 {
		fmt.Fprintf(stderr, "umiprof: -emit-format must be 1 or 2, got %d\n", *emitFormat)
		return 2
	}
	newEncoder := func(w io.Writer) *wire.Encoder {
		if *emitFormat == 1 {
			return wire.NewEncoder(w)
		}
		return wire.NewEncoderV2(w)
	}

	if *transcodeIn != "" {
		return runTranscode(*transcodeIn, *transcodeOut, *emitFormat, stderr)
	}
	if *ingestIn != "" {
		return runIngest(*ingestIn, *ingestAddr, *workers, stdout, stderr)
	}
	if *ingestAddr != "" {
		fmt.Fprintln(stderr, "umiprof: -ingest-addr requires -ingest")
		return 2
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Fprintf(stdout, "%-16s %-9s %s\n", w.Name, w.Suite, w.Class)
		}
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: umiprof [flags] <workload>   (umiprof -list to enumerate)")
		return 2
	}
	w, ok := workloads.ByName(fs.Arg(0))
	if !ok {
		fmt.Fprintf(stderr, "umiprof: unknown workload %q\n", fs.Arg(0))
		return 1
	}

	var plat = harness.P4
	if *machine == "k7" {
		plat = harness.K7
	}
	cfg := harness.UMIParams(plat)
	cfg.UseSampling = !*noSampling
	cfg.AnalyzerWorkers = *workers

	h := plat.Hierarchy(*hwpf)
	m := vm.New(w.Program(), h)
	rt := rio.NewRuntime(m)
	sys := umi.Attach(rt, cfg)
	// Stream emission is observational (it records analyzer inputs on the
	// guest thread before analysis), so stdout stays byte-identical with
	// or without -emit. -emit-live ships the same frames to a daemon as
	// they are encoded instead of (or as well as, on a different session)
	// writing a file — one emission sink at a time.
	if *emitOut != "" && *emitLive != "" {
		fmt.Fprintln(stderr, "umiprof: -emit and -emit-live are mutually exclusive")
		return 2
	}
	var emitEnc *wire.Encoder
	var emitFile *os.File
	var shipper *introspect.LiveShipper
	if *emitOut != "" {
		f, err := os.Create(*emitOut)
		if err != nil {
			fmt.Fprintf(stderr, "umiprof: emit: %v\n", err)
			return 1
		}
		emitFile = f
		emitEnc = newEncoder(f)
		emitEnc.Header(umi.WireHeader(&cfg, w.Name, *machine))
		sys.EnableWireEmit(emitEnc)
	}
	if *emitLive != "" {
		sh, err := introspect.NewLiveShipper(*emitLive, introspect.LiveConfig{
			Workers: *workers,
			Window:  *liveWindow,
		})
		if err != nil {
			fmt.Fprintf(stderr, "umiprof: emit-live: %v\n", err)
			return 1
		}
		shipper = sh
		emitEnc = newEncoder(sh)
		emitEnc.SetFrameHook(sh.FrameEnd)
		emitEnc.Header(umi.WireHeader(&cfg, w.Name, *machine))
		sys.EnableWireEmit(emitEnc)
		fmt.Fprintf(stderr, "umiprof: live-tailing telemetry into session %s at %s\n", sh.SessionID(), *emitLive)
	}
	// The event timeline and the HTTP server are purely observational:
	// neither touches modelled state, so everything printed to stdout is
	// byte-identical with or without them (stderr carries their notes).
	var elog *tracelog.Log
	if *traceOut != "" || *httpAddr != "" {
		elog = sys.EnableEventTrace(0)
	}
	if *httpAddr != "" {
		srv := &introspect.Server{
			Metrics:  sys.LiveMetricsSnapshot,
			Events:   elog,
			History:  sys.LiveHistory,
			Overhead: sys.LiveOverhead,
		}
		addr, stop, err := srv.Serve(*httpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "umiprof: http: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "umiprof: introspection server at http://%s/\n", addr)
		defer stop()
	}
	var opt *prefetch.Optimizer
	if *swpf {
		opt = prefetch.NewOptimizer(prefetch.DefaultConfig)
		sys.OnAnalyzed = opt.Hook()
	}
	var wset *umi.WorkingSet
	if *ws {
		wset = umi.NewWorkingSet(plat.L2.LineSize)
		sys.AddConsumer(wset)
	}
	var census *umi.PatternCensus
	if *patterns {
		census = umi.NewPatternCensus()
		sys.AddConsumer(census)
	}
	var explorer *umi.WhatIf
	if *whatIf {
		quarter, half, double := plat.L2, plat.L2, plat.L2
		quarter.Size /= 4
		quarter.Name = "L2/4"
		half.Size /= 2
		half.Name = "L2/2"
		double.Size *= 2
		double.Name = "L2x2"
		explorer = umi.NewWhatIf(cfg.WarmupRows, quarter, half, plat.L2, double)
		sys.AddConsumer(explorer)
	}
	if err := rt.Run(harness.MaxInstrs); err != nil {
		fmt.Fprintf(stderr, "umiprof: %v\n", err)
		return 1
	}
	sys.Finish()
	var liveRes *introspect.RunResult
	if emitEnc != nil {
		sys.EmitWireTail(emitEnc, wire.Trailer{
			GuestCycles: m.Cycles,
			TotalCycles: rt.TotalCycles(),
			Instrs:      m.Instrs,
			HWAccesses:  h.L2Stats.Accesses,
			HWMisses:    h.L2Stats.Misses,
			HWEvictions: h.L2.Stats().Evictions,
		})
		err := emitEnc.Flush()
		if emitFile != nil {
			if cerr := emitFile.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(stderr, "umiprof: emit: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "umiprof: wrote telemetry stream to %s\n", *emitOut)
		}
		if shipper != nil {
			res, cerr := shipper.Close()
			if err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(stderr, "umiprof: emit-live: %v\n", err)
				return 1
			}
			liveRes = res
			fmt.Fprintf(stderr, "umiprof: daemon acknowledged live session %s\n", shipper.SessionID())
		}
	}
	rep := sys.Report()

	fmt.Fprintf(stdout, "workload:   %s (%s; %s)\n", w.Name, w.Suite, w.Class)
	fmt.Fprintf(stdout, "platform:   %s (hw prefetch %v)\n", plat.Name, *hwpf && plat.HasHWPrefetch)
	fmt.Fprintf(stdout, "instrs:     %d guest, %d cycles (total %d with runtime overhead)\n",
		m.Instrs, m.Cycles, rt.TotalCycles())
	fmt.Fprintf(stdout, "hardware:   L2 %s\n", &h.L2Stats)
	fmt.Fprintf(stdout, "umi:        %s\n", rep)
	fmt.Fprintf(stdout, "traces:     %d seen, %d instrument events, %d blocks / %d traces built\n",
		rep.TracesSeen, rep.InstrumentEvents, rt.BlocksBuilt, rt.TracesBuilt)
	fmt.Fprintf(stdout, "analysis:   %d invocations, %d refs simulated, %d cache flushes\n",
		rep.AnalyzerInvocations, rep.SimulatedRefs, rep.Flushes)
	fmt.Fprintf(stdout, "sim ratio:  %.4f (hardware %.4f)\n", rep.SimMissRatio, h.L2Stats.MissRatio())

	fmt.Fprintf(stdout, "\ndelinquent loads (|P| = %d):\n", len(rep.Delinquent))
	an := sys.Analyzer()
	for _, st := range an.TopMissers(*top) {
		if !rep.Delinquent[st.PC] {
			continue
		}
		line := fmt.Sprintf("  %#08x  miss ratio %.3f (%d/%d)", st.PC, st.MissRatio(), st.Misses, st.Accesses)
		if si, ok := rep.Strides[st.PC]; ok {
			line += fmt.Sprintf("  stride %+d bytes (%.0f%% confident)", si.Stride, 100*si.Confidence)
		}
		fmt.Fprintln(stdout, line)
	}

	fmt.Fprintf(stdout, "\ntop %d simulated missers:\n", *top)
	for _, st := range an.TopMissers(*top) {
		kind := "load"
		if !st.IsLoad {
			kind = "store"
		}
		fmt.Fprintf(stdout, "  %#08x  %-5s misses=%-8d accesses=%-8d ratio=%.3f\n",
			st.PC, kind, st.Misses, st.Accesses, st.MissRatio())
	}

	if opt != nil {
		fmt.Fprintf(stdout, "\nsoftware prefetches inserted (%d):\n", len(opt.Insertions))
		for _, ins := range opt.Insertions {
			fmt.Fprintf(stdout, "  %v\n", ins)
		}
	}

	if wset != nil {
		fmt.Fprintf(stdout, "\nworking set (profiled bursts): %v\n", wset)
	}
	if census != nil {
		fmt.Fprintf(stdout, "\n%s\n", census.Summary())
	}
	if explorer != nil {
		fmt.Fprintln(stdout, "\nwhat-if cache geometries over the same profiles:")
		for _, r := range explorer.Results() {
			fmt.Fprintf(stdout, "  %-6s %6dKB  sim miss ratio %.4f (%d/%d)\n",
				r.Config.Name, r.Config.Size/1024, r.MissRatio, r.Misses, r.Accesses)
		}
	}

	// Self-overhead surfaces come last so everything above is a byte-exact
	// prefix of a metrics-less run: collection is always on, these flags
	// only choose whether anyone looks.
	if *showMetrics || *metricsJSON != "" {
		snap := sys.MetricsSnapshot()
		if *showMetrics {
			fmt.Fprintf(stdout, "\nself-overhead metrics:\n%s", umi.FormatMetrics(snap))
		}
		if *metricsJSON != "" {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				fmt.Fprintf(stderr, "umiprof: metrics: %v\n", err)
				return 1
			}
			if err := os.WriteFile(*metricsJSON, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(stderr, "umiprof: metrics: %v\n", err)
				return 1
			}
		}
	}
	if *showOverhead {
		rep := sys.Overhead()
		fmt.Fprintf(stdout, "\n%s%s", rep, rep.LiveString())
	}
	if *showHistory {
		hv := sys.History()
		fmt.Fprintf(stdout, "\n%s", umi.FormatHistory(hv.Windows))
	}
	if *historyOut != "" {
		hv := sys.History()
		data, err := json.MarshalIndent(hv, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "umiprof: history: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*historyOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "umiprof: history: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "umiprof: wrote %d of %d windows to %s\n",
			len(hv.Windows), hv.Total, *historyOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "umiprof: trace: %v\n", err)
			return 1
		}
		werr := tracelog.WriteChromeTrace(f, elog.Events())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "umiprof: trace: %v\n", werr)
			return 1
		}
		fmt.Fprintf(stderr, "umiprof: wrote %d events (%d dropped) to %s\n",
			len(elog.Events()), elog.Drops(), *traceOut)
	}
	// The daemon's merged result for a live-tailed run — identical to what
	// -ingest of a recording of this run would print.
	if liveRes != nil {
		data, err := json.MarshalIndent(liveRes, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "umiprof: emit-live: %v\n", err)
			return 1
		}
		stdout.Write(append(data, '\n'))
	}
	if *httpAddr != "" && *httpLinger > 0 {
		fmt.Fprintf(stderr, "umiprof: introspection server up for another %s\n", *httpLinger)
		time.Sleep(*httpLinger)
	}
	return 0
}

// runTranscode re-encodes one recorded stream at the requested wire
// version. Decoding either file replays identically; v2 output gains
// per-frame compression and the shard manifest.
func runTranscode(in, out string, version int, stderr io.Writer) int {
	if out == "" {
		fmt.Fprintln(stderr, "umiprof: -transcode requires -o <file>")
		return 2
	}
	src, err := os.Open(in)
	if err != nil {
		fmt.Fprintf(stderr, "umiprof: transcode: %v\n", err)
		return 1
	}
	defer src.Close()
	dst, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(stderr, "umiprof: transcode: %v\n", err)
		return 1
	}
	terr := wire.Transcode(dst, src, byte(version))
	if cerr := dst.Close(); terr == nil {
		terr = cerr
	}
	if terr != nil {
		fmt.Fprintf(stderr, "umiprof: transcode: %v\n", terr)
		return 1
	}
	si, _ := os.Stat(in)
	so, _ := os.Stat(out)
	if si != nil && so != nil {
		fmt.Fprintf(stderr, "umiprof: transcoded %s (%d bytes) to v%d %s (%d bytes)\n",
			in, si.Size(), version, out, so.Size())
	}
	return 0
}

// runIngest replays a recorded umi-profile/v1 stream: locally through
// umi.Replay (printing the RunResult JSON a daemon ingest would return),
// or — with addr — shipped to a umid daemon over POST
// /sessions/{id}/ingest, printing the daemon's response. Either way the
// output is byte-identical to the capture process's marshaled result.
func runIngest(path, addr string, workers int, stdout, stderr io.Writer) int {
	if addr != "" {
		return runIngestRemote(path, addr, workers, stdout, stderr)
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "umiprof: ingest: %v\n", err)
		return 1
	}
	defer f.Close()
	res, err := introspect.ReplayStream(f, workers)
	if err != nil {
		fmt.Fprintf(stderr, "umiprof: ingest: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "umiprof: ingest: %v\n", err)
		return 1
	}
	stdout.Write(append(data, '\n'))
	return 0
}

// runIngestRemote creates an ingest session on the daemon at addr, POSTs
// the stream, and prints the daemon's RunResult response.
func runIngestRemote(path, addr string, workers int, stdout, stderr io.Writer) int {
	stream, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "umiprof: ingest: %v\n", err)
		return 1
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	cfgBody := fmt.Sprintf(`{"ingest": true, "workers": %d}`, workers)
	resp, err := http.Post(base+"/sessions", "application/json", strings.NewReader(cfgBody))
	if err != nil {
		fmt.Fprintf(stderr, "umiprof: ingest: create session: %v\n", err)
		return 1
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != http.StatusCreated {
		fmt.Fprintf(stderr, "umiprof: ingest: create session: status %d, body %s\n", resp.StatusCode, body)
		return 1
	}
	var inf struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &inf); err != nil || inf.ID == "" {
		fmt.Fprintf(stderr, "umiprof: ingest: create session: bad response %s\n", body)
		return 1
	}
	req, err := http.NewRequest(http.MethodPost, base+"/sessions/"+inf.ID+"/ingest", bytes.NewReader(stream))
	if err != nil {
		fmt.Fprintf(stderr, "umiprof: ingest: %v\n", err)
		return 1
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	// v2 recordings carry a shard manifest; declaring it up front lets the
	// daemon detect a retried duplicate and make the upload idempotent.
	if m, ok, err := wire.ScanManifest(bytes.NewReader(stream)); err == nil && ok {
		req.Header.Set("X-Umi-Shard-Id", strconv.FormatUint(m.ShardID, 10))
		req.Header.Set("X-Umi-Shard-Frames", strconv.FormatUint(m.Frames, 10))
		req.Header.Set("X-Umi-Shard-Checksum", strconv.FormatUint(m.Checksum, 10))
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintf(stderr, "umiprof: ingest: %v\n", err)
		return 1
	}
	body, rerr = io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "umiprof: ingest: status %d, body %s\n", resp.StatusCode, body)
		return 1
	}
	fmt.Fprintf(stderr, "umiprof: ingested %d bytes into session %s at %s\n", len(stream), inf.ID, base)
	stdout.Write(body)
	return 0
}
