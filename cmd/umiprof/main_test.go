package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"umi/internal/introspect"
	"umi/internal/metrics"
	"umi/internal/umi"
)

// The end-to-end tests drive run() — main minus os.Exit — so they exercise
// the real flag parsing, workload resolution, simulation, and rendering
// path the installed binary takes.

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestE2EList(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("umiprof -list exited %d", code)
	}
	for _, name := range []string{"181.mcf", "470.lbm", "em3d"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestE2EBadInvocations(t *testing.T) {
	if code, _, errs := runCLI(t); code != 2 || !strings.Contains(errs, "usage:") {
		t.Errorf("no args: exit %d, stderr %q; want 2 with usage", code, errs)
	}
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, errs := runCLI(t, "no-such-workload"); code != 1 ||
		!strings.Contains(errs, "unknown workload") {
		t.Errorf("unknown workload: exit %d, stderr %q; want 1 with diagnosis", code, errs)
	}
}

func TestE2EReportShape(t *testing.T) {
	code, out, errs := runCLI(t, "470.lbm")
	if code != 0 {
		t.Fatalf("umiprof 470.lbm exited %d, stderr %q", code, errs)
	}
	for _, want := range []string{
		"workload:   470.lbm",
		"umi:        umi.Report{",
		"delinquent loads (|P| =",
		"top 10 simulated missers:",
		"sim ratio:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\nfull output:\n%s", want, out)
		}
	}
	if strings.Contains(out, "self-overhead metrics:") {
		t.Error("metrics section printed without -metrics")
	}
}

// TestE2EWorkersByteIdentical is the pipeline's user-facing determinism
// contract: -workers=4 must print byte-for-byte what -workers=1 prints.
func TestE2EWorkersByteIdentical(t *testing.T) {
	code1, out1, _ := runCLI(t, "-workers=1", "470.lbm")
	code4, out4, _ := runCLI(t, "-workers=4", "470.lbm")
	if code1 != 0 || code4 != 0 {
		t.Fatalf("exit codes %d/%d, want 0/0", code1, code4)
	}
	if out1 != out4 {
		t.Errorf("-workers=4 output differs from -workers=1:\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
			out1, out4)
	}
}

// TestE2EMetricsOffIsPrefix checks that metrics display is purely
// additive: a -metrics run's output must begin with the exact bytes of a
// metrics-less run (collection is always on; the flag only reveals it).
func TestE2EMetricsOffIsPrefix(t *testing.T) {
	_, plain, _ := runCLI(t, "470.lbm")
	code, withMetrics, _ := runCLI(t, "-metrics", "470.lbm")
	if code != 0 {
		t.Fatalf("-metrics run exited %d", code)
	}
	if !strings.HasPrefix(withMetrics, plain) {
		t.Errorf("-metrics output is not plain output + suffix:\n--- plain ---\n%s--- with metrics ---\n%s",
			plain, withMetrics)
	}
	suffix := strings.TrimPrefix(withMetrics, plain)
	for _, want := range []string{"self-overhead metrics:", "filter rate:", "umi.traces.instrumented"} {
		if !strings.Contains(suffix, want) {
			t.Errorf("metrics section missing %q:\n%s", want, suffix)
		}
	}
}

func TestE2EMetricsJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	code, _, errs := runCLI(t, "-workers=2", "-metrics-json", path, "470.lbm")
	if code != 0 {
		t.Fatalf("-metrics-json run exited %d, stderr %q", code, errs)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics JSON does not round-trip: %v", err)
	}
	if snap.Counter("umi.traces.instrumented") == 0 {
		t.Error("round-tripped snapshot lost umi.traces.instrumented")
	}
	if snap.Counter("umi.analyzer.invocations") == 0 {
		t.Error("round-tripped snapshot lost umi.analyzer.invocations")
	}
	if h := snap.Histogram("umi.analyzer.latency_ns"); h.Count == 0 {
		t.Error("round-tripped snapshot lost the analysis latency histogram")
	}
	if snap.Counter("umi.pool.submits") == 0 {
		t.Error("-workers=2 run recorded no pipeline submissions")
	}
}

// TestE2ETraceOut: -trace-out must leave stdout byte-identical, and the
// written file must be valid, schema-complete, byte-deterministic Chrome
// trace-event JSON.
func TestE2ETraceOut(t *testing.T) {
	_, plain, _ := runCLI(t, "470.lbm")
	path := filepath.Join(t.TempDir(), "trace.json")
	code, out, errs := runCLI(t, "-trace-out", path, "470.lbm")
	if code != 0 {
		t.Fatalf("-trace-out run exited %d, stderr %q", code, errs)
	}
	if out != plain {
		t.Errorf("-trace-out perturbed stdout:\n--- plain ---\n%s--- traced ---\n%s", plain, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no traceEvents")
	}
	phases := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d missing required key %q: %v", i, key, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		phases[ph] = true
	}
	// Metadata, instants, and the analyzer spans must all be present.
	for _, ph := range []string{"M", "i", "X"} {
		if !phases[ph] {
			t.Errorf("trace has no %q events; phases: %v", ph, phases)
		}
	}
	// Byte-determinism for a fixed workload at the default worker count.
	path2 := filepath.Join(t.TempDir(), "trace2.json")
	if code, _, _ := runCLI(t, "-trace-out", path2, "470.lbm"); code != 0 {
		t.Fatal("second -trace-out run failed")
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("trace files differ across identical runs")
	}
}

// syncBuffer lets the HTTP test read stderr while run() is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestE2EHTTP drives the live introspection endpoint end to end: the
// server comes up on an ephemeral port, serves /metrics and /events while
// the CLI lingers, and stdout stays byte-identical to a plain run.
func TestE2EHTTP(t *testing.T) {
	_, plain, _ := runCLI(t, "470.lbm")
	var out bytes.Buffer
	var errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-http", "127.0.0.1:0", "-http-linger", "3s", "470.lbm"}, &out, &errb)
	}()

	addrRe := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)/`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server address never appeared on stderr: %q", errb.String())
		}
		if m := addrRe.FindStringSubmatch(errb.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap metrics.Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not a Snapshot: %v", err)
	}
	var events struct {
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(get("/events?n=50"), &events); err != nil {
		t.Fatalf("/events is not valid JSON: %v", err)
	}
	if !bytes.HasPrefix(get("/events/timeline"), []byte("timeline:")) {
		t.Error("/events/timeline missing header")
	}
	var ovh umi.OverheadReport
	if err := json.Unmarshal(get("/overhead"), &ovh); err != nil {
		t.Fatalf("/overhead is not an OverheadReport: %v", err)
	}
	if ovh.Schema != umi.OverheadSchema || len(ovh.Stages) == 0 {
		t.Errorf("/overhead payload = %+v, want a schema-stamped staged report", ovh)
	}

	if code := <-done; code != 0 {
		t.Fatalf("-http run exited %d, stderr %q", code, errb.String())
	}
	if out.String() != plain {
		t.Errorf("-http perturbed stdout:\n--- plain ---\n%s--- http ---\n%s", plain, out.String())
	}
}

// TestE2EHistoryOut: -history-out must leave stdout untouched, write a
// schema-complete history export, and produce byte-identical files across
// runs and across worker counts — the pipeline's sequencer stamps windows
// with modelled hand-off cycles, so async history equals inline history.
func TestE2EHistoryOut(t *testing.T) {
	_, plain, _ := runCLI(t, "470.lbm")
	path := filepath.Join(t.TempDir(), "history.json")
	code, out, errs := runCLI(t, "-history-out", path, "470.lbm")
	if code != 0 {
		t.Fatalf("-history-out run exited %d, stderr %q", code, errs)
	}
	if out != plain {
		t.Errorf("-history-out perturbed stdout:\n--- plain ---\n%s--- history ---\n%s", plain, out)
	}
	if !strings.Contains(errs, "umiprof: wrote") {
		t.Errorf("stderr missing write note: %q", errs)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("history file is not valid JSON: %v", err)
	}
	for _, key := range []string{"schema", "total", "dropped", "cap", "phase_changes", "windows"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("history export missing key %q", key)
		}
	}
	if doc["schema"] != "umi-history/v1" {
		t.Errorf("schema = %v, want umi-history/v1", doc["schema"])
	}
	windows, _ := doc["windows"].([]any)
	if len(windows) == 0 {
		t.Fatal("history export has no windows")
	}
	w0, _ := windows[0].(map[string]any)
	for _, key := range []string{"invocation", "cycles", "refs", "window_miss_ratio",
		"cum_miss_ratio", "delinquent", "delinquent_hash", "jaccard", "phase_change"} {
		if _, ok := w0[key]; !ok {
			t.Errorf("window missing key %q: %v", key, w0)
		}
	}

	// Determinism: workers=1 and workers=4 write byte-identical exports.
	path1 := filepath.Join(t.TempDir(), "h1.json")
	path4 := filepath.Join(t.TempDir(), "h4.json")
	if code, _, _ := runCLI(t, "-workers=1", "-history-out", path1, "470.lbm"); code != 0 {
		t.Fatal("workers=1 history run failed")
	}
	if code, _, _ := runCLI(t, "-workers=4", "-history-out", path4, "470.lbm"); code != 0 {
		t.Fatal("workers=4 history run failed")
	}
	d1, err := os.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := os.ReadFile(path4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d4) {
		t.Error("history exports differ between workers=1 and workers=4")
	}
}

// TestE2EHistoryFlag: -history appends the phase-history section to stdout
// after the plain report, leaving the report itself untouched.
func TestE2EHistoryFlag(t *testing.T) {
	_, plain, _ := runCLI(t, "470.lbm")
	code, out, errs := runCLI(t, "-history", "470.lbm")
	if code != 0 {
		t.Fatalf("-history run exited %d, stderr %q", code, errs)
	}
	if !strings.HasPrefix(out, plain) {
		t.Errorf("-history must extend plain stdout, not rewrite it:\n%s", out)
	}
	if !strings.Contains(out, "phase history: ") {
		t.Errorf("-history output missing phase-history section:\n%s", out)
	}
}

// TestE2EOverheadFlag: -overhead is purely additive (the plain output
// stays a byte-exact prefix) and appends both attribution views — the
// deterministic modelled table and the measured wall table.
func TestE2EOverheadFlag(t *testing.T) {
	_, plain, _ := runCLI(t, "470.lbm")
	code, out, errs := runCLI(t, "-overhead", "470.lbm")
	if code != 0 {
		t.Fatalf("-overhead run exited %d, stderr %q", code, errs)
	}
	if !strings.HasPrefix(out, plain) {
		t.Errorf("-overhead must extend plain stdout, not rewrite it:\n%s", out)
	}
	suffix := strings.TrimPrefix(out, plain)
	for _, want := range []string{
		"self-overhead: guest",
		"substrate",
		"self-overhead (wall): run",
		"(sampled estimate)",
	} {
		if !strings.Contains(suffix, want) {
			t.Errorf("-overhead section missing %q:\n%s", want, suffix)
		}
	}
}

// TestE2EPromScrape scrapes /metrics/prom off a live run: the exposition
// must parse (TYPE-declared families, parseable sample values) and carry
// the stable counter names dashboards pin.
func TestE2EPromScrape(t *testing.T) {
	var out bytes.Buffer
	var errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-http", "127.0.0.1:0", "-http-linger", "3s", "470.lbm"}, &out, &errb)
	}()

	addrRe := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)/`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server address never appeared on stderr: %q", errb.String())
		}
		if m := addrRe.FindStringSubmatch(errb.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get("http://" + addr + "/metrics/prom")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want a 0.0.4 exposition", ct)
	}
	types := make(map[string]string)
	for ln, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("line %d: unparseable value in %q", ln+1, line)
		}
	}
	// The stable names dashboards depend on: at least one counter, one
	// gauge, one histogram from the registry, plus the history families.
	wantTypes := map[string]string{
		"umi_phase_windows_total": "counter",
		"umi_phase_changes_total": "counter",
	}
	for name, typ := range wantTypes {
		if types[name] != typ {
			t.Errorf("family %s = %q, want %q; all: %v", name, types[name], typ, types)
		}
	}
	var haveCounter, haveGauge, haveHist bool
	for _, typ := range types {
		switch typ {
		case "counter":
			haveCounter = true
		case "gauge":
			haveGauge = true
		case "histogram":
			haveHist = true
		}
	}
	if !haveCounter || !haveGauge || !haveHist {
		t.Errorf("exposition lacks a metric kind: counter=%v gauge=%v histogram=%v",
			haveCounter, haveGauge, haveHist)
	}

	if code := <-done; code != 0 {
		t.Fatalf("-http run exited %d, stderr %q", code, errb.String())
	}
}

// TestE2ETranscode drives the -transcode path end to end: a v1 recording
// re-encoded to v2 must come out smaller and replay byte-identically, and
// the flag surface must reject a missing -o.
func TestE2ETranscode(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "stream-v1.bin")
	v2 := filepath.Join(dir, "stream-v2.bin")
	if code, _, errs := runCLI(t, "-emit", v1, "-emit-format", "1", "em3d"); code != 0 {
		t.Fatalf("emit: exit %d, stderr %q", code, errs)
	}
	code, _, errs := runCLI(t, "-transcode", v1, "-o", v2)
	if code != 0 {
		t.Fatalf("transcode: exit %d, stderr %q", code, errs)
	}
	if !strings.Contains(errs, "transcoded") {
		t.Errorf("transcode summary missing from stderr: %q", errs)
	}
	s1, err := os.Stat(v1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := os.Stat(v2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Size() >= s1.Size() {
		t.Errorf("v2 re-encoding (%d bytes) not smaller than v1 (%d bytes)", s2.Size(), s1.Size())
	}
	_, rep1, _ := runCLI(t, "-ingest", v1)
	code, rep2, errs := runCLI(t, "-ingest", v2)
	if code != 0 {
		t.Fatalf("ingest v2: exit %d, stderr %q", code, errs)
	}
	if rep1 != rep2 {
		t.Error("v2 replay report differs from the v1 replay report")
	}
	if code, _, _ := runCLI(t, "-transcode", v1); code != 2 {
		t.Errorf("-transcode without -o: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-transcode", filepath.Join(dir, "nope.bin"), "-o", v2); code != 1 {
		t.Errorf("-transcode of a missing file: exit %d, want 1", code)
	}
}

// TestE2EEmitIngestByteIdentity is the wire format's end-to-end contract
// through the real CLI: a stream recorded with -emit is byte-identical
// whatever the capture-side worker count, replaying it with -ingest
// reproduces the standalone RunResult byte for byte at any replay worker
// count, and -emit itself never perturbs the printed report.
func TestE2EEmitIngestByteIdentity(t *testing.T) {
	const wl = "em3d"
	dir := t.TempDir()

	base, err := introspect.RunStandalone(introspect.SessionConfig{Workload: wl})
	if err != nil {
		t.Fatalf("standalone baseline: %v", err)
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want := string(data) + "\n"

	_, plain, _ := runCLI(t, wl)
	streams := make(map[int][]byte)
	for _, emitW := range []int{0, 4} {
		f := filepath.Join(dir, "stream"+strconv.Itoa(emitW)+".bin")
		code, out, errs := runCLI(t, "-emit", f, "-workers", strconv.Itoa(emitW), wl)
		if code != 0 {
			t.Fatalf("emit workers=%d: exit %d, stderr %q", emitW, code, errs)
		}
		if out != plain {
			t.Errorf("-emit at workers=%d perturbed the report", emitW)
		}
		stream, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		streams[emitW] = stream
	}
	if !bytes.Equal(streams[0], streams[4]) {
		t.Errorf("recorded stream differs across capture worker counts: %d vs %d bytes",
			len(streams[0]), len(streams[4]))
	}

	streamFile := filepath.Join(dir, "stream0.bin")
	for _, ingestW := range []int{4, 0} {
		code, out, errs := runCLI(t, "-ingest", streamFile, "-workers", strconv.Itoa(ingestW))
		if code != 0 {
			t.Fatalf("ingest workers=%d: exit %d, stderr %q", ingestW, code, errs)
		}
		if out != want {
			t.Errorf("ingest workers=%d result diverges from standalone run (%d vs %d bytes)",
				ingestW, len(out), len(want))
		}
	}
}

// TestE2EIngestRemote ships a recorded stream to a live umid daemon with
// -ingest-addr; the daemon's response must be the same byte-identical
// RunResult the local replay prints.
func TestE2EIngestRemote(t *testing.T) {
	const wl = "em3d"
	dir := t.TempDir()
	streamFile := filepath.Join(dir, "stream.bin")
	if code, _, errs := runCLI(t, "-emit", streamFile, wl); code != 0 {
		t.Fatalf("emit: exit %d, stderr %q", code, errs)
	}
	_, local, _ := runCLI(t, "-ingest", streamFile)

	d := introspect.NewDaemon(introspect.DaemonConfig{PrepWorkers: 2})
	addr, stop, err := d.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	defer func() {
		stop()
		d.Shutdown()
	}()

	code, out, errs := runCLI(t, "-ingest", streamFile, "-ingest-addr", addr, "-workers", "2")
	if code != 0 {
		t.Fatalf("remote ingest: exit %d, stderr %q", code, errs)
	}
	if out != local {
		t.Errorf("remote ingest result diverges from local replay (%d vs %d bytes)", len(out), len(local))
	}
	if !strings.Contains(errs, "ingested") {
		t.Errorf("stderr missing ingest note: %q", errs)
	}

	// A second shard into the same daemon via a fresh session still works
	// (the client creates a session per invocation).
	if code, _, errs := runCLI(t, "-ingest", streamFile, "-ingest-addr", addr); code != 0 {
		t.Errorf("second remote ingest: exit %d, stderr %q", code, errs)
	}

	// Bad invocation: -ingest-addr without -ingest.
	if code, _, _ := runCLI(t, "-ingest-addr", addr, wl); code != 2 {
		t.Errorf("-ingest-addr without -ingest: exit %d, want 2", code)
	}
}
