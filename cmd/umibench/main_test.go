package main

import (
	"strings"
	"testing"

	"umi/internal/harness"
)

func TestRunDispatch(t *testing.T) {
	v, text, err := run("table2", nil, "")
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	if v == nil || !strings.Contains(text, "tradeoffs") {
		t.Errorf("table2 output wrong: %q", text)
	}
	if _, _, err := run("nope", nil, ""); err == nil {
		t.Error("unknown experiment must error")
	}
	if _, _, err := run("table3", []string{"not-a-workload"}, ""); err == nil {
		t.Error("unknown workload must error")
	}
	_, text, err = run("list", nil, "")
	if err != nil || !strings.Contains(text, "181.mcf") {
		t.Errorf("list broken: %v, %q", err, text)
	}
}

func TestRunSmallExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a UMI experiment")
	}
	v, text, err := run("table6", []string{"181.mcf"}, "")
	if err != nil {
		t.Fatalf("table6: %v", err)
	}
	if v == nil || !strings.Contains(text, "181.mcf") {
		t.Errorf("table6 output wrong: %q", text)
	}
}

func TestRunReplayGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a UMI experiment")
	}
	v, text, err := run("replay-geometry", []string{"em3d"}, "")
	if err != nil {
		t.Fatalf("replay-geometry: %v", err)
	}
	r, ok := v.(*harness.ReplayGeometryResult)
	if !ok {
		t.Fatalf("replay-geometry value is %T, want *harness.ReplayGeometryResult", v)
	}
	if len(r.Points) != 5 {
		t.Errorf("swept %d geometries, want 5", len(r.Points))
	}
	if !strings.Contains(text, "(captured)") || !strings.Contains(text, "em3d") {
		t.Errorf("replay-geometry render wrong: %q", text)
	}
	if _, _, err := run("replay-geometry", nil, "/nonexistent/stream.bin"); err == nil {
		t.Error("missing stream file must error")
	}
}

func TestRunOverheadFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a UMI experiment")
	}
	v, text, err := run("overhead-frontier", []string{"em3d"}, "")
	if err != nil {
		t.Fatalf("overhead-frontier: %v", err)
	}
	r, ok := v.(*harness.FrontierResult)
	if !ok {
		t.Fatalf("overhead-frontier value is %T, want *harness.FrontierResult", v)
	}
	if r.Schema != harness.FrontierSchema || len(r.Points) != 4 {
		t.Errorf("frontier = schema %q, %d points; want %q with 4 points",
			r.Schema, len(r.Points), harness.FrontierSchema)
	}
	for _, want := range []string{"full", "burst-8+adapt", "em3d", "Recall"} {
		if !strings.Contains(text, want) {
			t.Errorf("frontier render missing %q:\n%s", want, text)
		}
	}
}

func TestRunTimelineExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a UMI experiment")
	}
	v, text, err := run("timeline", []string{"em3d"}, "")
	if err != nil {
		t.Fatalf("timeline: %v", err)
	}
	if v == nil || !strings.Contains(text, "delinquent-set evolution") ||
		!strings.Contains(text, "em3d") {
		t.Errorf("timeline output wrong: %q", text)
	}
}
