// Command umibench regenerates the tables and figures of the UMI paper's
// evaluation (CGO 2007) from the reproduction's simulated stack.
//
// Usage:
//
//	umibench [-bench name,name,...] <experiment> [<experiment> ...]
//	umibench all
//
// Experiments: table1 table2 table3 table4 table5 table6 fig2 fig3 fig4
// fig5 fig6 sens-threshold sens-profile. With -bench, the applicable
// experiments run on the named workloads only (default: the paper's 32
// CPU2000+Olden benchmarks). "umibench list" prints the workload names.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"umi/internal/harness"
	"umi/internal/workloads"
)

func main() {
	benchFlag := flag.String("bench", "", "comma-separated workload subset (default: the paper's 32)")
	streamFlag := flag.String("stream", "",
		"umi-profile/v1 stream file for replay-geometry (default: record one in memory from the first -bench workload)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of rendered tables")
	parallel := flag.Int("parallel", 1,
		"experiment cells (workload x configuration) to run concurrently; output is identical at any level")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	harness.SetParallelism(*parallel)
	var names []string
	if *benchFlag != "" {
		names = strings.Split(*benchFlag, ",")
	}
	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = []string{"table1", "table2", "table3", "table4", "table5", "table6",
			"fig2", "fig3", "fig4", "fig5", "fig6",
			"sens-threshold", "sens-profile", "sens-geometry", "linuxapps",
			"counters-vs-umi", "self-overhead", "overhead-frontier",
			"timeline", "phases", "wire-compress"}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, exp := range args {
		v, text, err := run(exp, names, *streamFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "umibench: %s: %v\n", exp, err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := enc.Encode(map[string]any{"experiment": exp, "result": v}); err != nil {
				fmt.Fprintf(os.Stderr, "umibench: %s: %v\n", exp, err)
				os.Exit(1)
			}
		} else if text != "" {
			fmt.Println(text)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: umibench [-bench names] [-parallel N] <experiment>...

experiments:
  table1          HW counter sampling overhead vs UMI (Table 1)
  table2          qualitative profiling tradeoffs (Table 2)
  table3          profiling statistics, no sampling (Table 3)
  table4          correlation coefficients, CPU2000+Olden (Table 4)
  table5          correlation coefficients, CPU2006 subset (Table 5)
  table6          delinquent load prediction quality (Table 6)
  fig2            runtime overhead (Figure 2)
  fig3            SW prefetch running time, P4 no HW prefetch (Figure 3)
  fig4            SW prefetch running time, AMD K7 (Figure 4)
  fig5            SW vs HW vs combined prefetch time, P4 (Figure 5)
  fig6            L2 misses under prefetching (Figure 6)
  sens-threshold  frequency-threshold sensitivity (Section 7.2)
  sens-profile    address-profile-length sensitivity (Section 7.2)
  sens-geometry   geometry vs profile-length sensitivity (Section 5)
  linuxapps       Linux application miss ratios (Section 6.3)
  counters-vs-umi PMU sampling quality per overhead vs UMI (Section 1.2)
  self-overhead   modelled UMI cost vs the runtime's own metrics
  overhead-frontier
                  sampling-rate x adaptation sweep: fill-cost reduction
                  vs delinquent-set recall and miss-ratio correlation
                  (default: 181.mcf, 197.parser, em3d, 470.lbm)
  timeline        delinquent-set evolution per analyzer invocation
  phases          windowed miss-ratio and delinquent-set churn history
  replay-geometry geometry sweep replaying one umi-profile/v1 stream
                  (-stream file, or records the first -bench workload)
  wire-compress   umi-profile/v2 compression ratio and replay equivalence
                  per workload (default: em3d, 181.mcf)
  all             everything above
  list            print workload names
`)
}

func run(exp string, names []string, streamPath string) (any, string, error) {
	switch exp {
	case "list":
		var sb strings.Builder
		for _, w := range workloads.All() {
			fmt.Fprintf(&sb, "%-16s %-9s %s\n", w.Name, w.Suite, w.Class)
		}
		return workloads.Names(), sb.String(), nil
	case "table1":
		r, err := harness.Table1()
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "table2":
		t := harness.Table2()
		return t, t, nil
	case "table3":
		r, err := harness.Table3(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "table4":
		r, err := harness.Table4(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "table5":
		r, err := harness.Table5()
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "table6":
		r, err := harness.Table6(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "fig2":
		r, err := harness.Fig2(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "fig3":
		r, err := harness.Fig3(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "fig4":
		r, err := harness.Fig4(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "fig5":
		r, err := harness.Fig5(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "fig6":
		r, err := harness.Fig6(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "sens-threshold":
		r, err := harness.SensitivityThreshold(names)
		if err != nil {
			return nil, "", err
		}
		return r, harness.RenderSens(r), nil
	case "sens-profile":
		r, err := harness.SensitivityProfileLen(names)
		if err != nil {
			return nil, "", err
		}
		return r, harness.RenderSens(r), nil
	case "sens-geometry":
		r, err := harness.SensitivityGeometry(names)
		if err != nil {
			return nil, "", err
		}
		return r, harness.RenderGeometry(r), nil
	case "linuxapps":
		r, err := harness.LinuxApps()
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "counters-vs-umi":
		r, err := harness.CountersVsUMIRun(names)
		if err != nil {
			return nil, "", err
		}
		return r, harness.RenderCvU(r), nil
	case "self-overhead":
		r, err := harness.SelfOverhead(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String() + r.LiveString(), nil
	case "overhead-frontier":
		r, err := harness.OverheadFrontier(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "timeline":
		r, err := harness.Timeline(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "phases":
		r, err := harness.Phases(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String(), nil
	case "wire-compress":
		r, err := harness.WireCompress(names)
		if err != nil {
			return nil, "", err
		}
		return r, r.String() + r.LiveString(), nil
	case "replay-geometry":
		var (
			r   *harness.ReplayGeometryResult
			err error
		)
		if streamPath != "" {
			stream, rerr := os.ReadFile(streamPath)
			if rerr != nil {
				return nil, "", rerr
			}
			r, err = harness.ReplayGeometry(stream)
		} else {
			name := "181.mcf"
			if len(names) > 0 {
				name = names[0]
			}
			r, err = harness.ReplayGeometryWorkload(name)
		}
		if err != nil {
			return nil, "", err
		}
		return r, harness.RenderReplayGeometry(r), nil
	default:
		return nil, "", fmt.Errorf("unknown experiment %q", exp)
	}
}
